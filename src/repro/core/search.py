"""The ranked search engine and the boolean-filter baseline.

:class:`SearchEngine` is the paper's similarity search over the catalog:
score every candidate feature, return the top-k with per-term breakdowns.
Optional :class:`~repro.catalog.index.CatalogIndexes` prune candidates
for spatial/temporal queries; pruning is conservative at the configured
``epsilon`` (candidates whose indexed term would score below it may be
skipped).

:class:`BooleanSearchEngine` is the comparison baseline a conventional
data portal provides: hard filters, no ranking.  A dataset either matches
*all* terms or is not returned — exactly the behaviour whose failure on
partial matches motivates ranked search.
"""

from __future__ import annotations

import heapq
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..catalog.index import CatalogIndexes
from ..catalog.records import DatasetFeature
from ..catalog.store import CatalogStore
from ..geo import SECONDS_PER_DAY
from ..hierarchy import ConceptHierarchy
from ..obs import current_request, get_telemetry, use_request, use_telemetry
from .cache import QueryCache
from .columnar import ColumnarScorer, ColumnarSnapshot
from .query import Query
from .scoring import (
    QueryScorer,
    ScoreBreakdown,
    ScoringConfig,
    decay_horizon,
)


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked hit."""

    dataset_id: str
    score: float
    breakdown: ScoreBreakdown
    feature: DatasetFeature

    def __str__(self) -> str:
        return f"{self.score:.3f}  {self.dataset_id}"


class SearchResults(list):
    """A page of results plus match-count metadata.

    Behaves exactly like ``list[SearchResult]`` (existing callers keep
    working) but additionally carries ``total_matches`` — how many
    datasets are *known* to match beyond the page — and ``truncated``,
    so a UI can render "showing 10 of N" instead of guessing from
    ``len(results) == limit``.

    For the boolean engine the count is exact, as it is for ranked
    search whenever the page is not full.  Once pruning kicks in (the
    top-k floor, or index candidate pruning) it is a lower bound:
    skipped datasets are counted only when their score is provably
    positive from the cheap terms alone.

    Slicing and :meth:`copy` preserve the metadata (``total_matches``
    carries over; ``truncated`` is re-derived for the narrower page), so
    a UI paginating with ``results[:5]`` still knows the match count.
    Concatenation (``+``) falls back to a plain ``list`` — two pages
    have no single meaningful ``total_matches``; this is pinned by a
    regression test.
    """

    __slots__ = ("total_matches", "truncated")

    def __init__(
        self,
        items: Iterable[SearchResult] = (),
        total_matches: int | None = None,
        truncated: bool | None = None,
    ) -> None:
        super().__init__(items)
        if total_matches is None:
            total_matches = len(self)
        self.total_matches = total_matches
        if truncated is None:
            truncated = total_matches > len(self)
        self.truncated = truncated

    def __getitem__(self, index):
        item = super().__getitem__(index)
        if isinstance(index, slice):
            return SearchResults(
                item,
                total_matches=self.total_matches,
                truncated=self.truncated or self.total_matches > len(item),
            )
        return item

    def copy(self) -> "SearchResults":
        return SearchResults(
            self,
            total_matches=self.total_matches,
            truncated=self.truncated,
        )


class _HeapItem:
    """Min-heap entry ordered worst-first under ``(-score, id)`` ranking."""

    __slots__ = ("result",)

    def __init__(self, result: SearchResult) -> None:
        self.result = result

    def __lt__(self, other: "_HeapItem") -> bool:
        a, b = self.result, other.result
        if a.score != b.score:
            return a.score < b.score
        return a.dataset_id > b.dataset_id


class _TopK:
    """A fixed-size min-heap keeping the best ``limit`` results.

    Replaces score-all-then-sort: O(n log k) instead of O(n log n), and
    its floor feeds the scorer's upper-bound pruning.  The ordering
    matches the final ``(-score, dataset_id)`` sort exactly, ties
    included, so the kept set is identical to the naive path's.
    """

    __slots__ = ("limit", "_heap")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._heap: list[_HeapItem] = []

    def floor(self) -> tuple[float, str] | None:
        """The current kth ``(score, dataset_id)``; None until full."""
        if len(self._heap) < self.limit:
            return None
        worst = self._heap[0].result
        return worst.score, worst.dataset_id

    def push(self, result: SearchResult) -> None:
        item = _HeapItem(result)
        if len(self._heap) < self.limit:
            heapq.heappush(self._heap, item)
        elif self._heap[0] < item:
            heapq.heapreplace(self._heap, item)

    def sorted_results(self) -> list[SearchResult]:
        return sorted(
            (item.result for item in self._heap),
            key=lambda r: (-r.score, r.dataset_id),
        )


def score_rows_into(
    cscorer: ColumnarScorer,
    query: Query,
    rows: Sequence[int],
    top: _TopK,
) -> int:
    """Score columnar ``rows`` into the top-k heap; returns known matches.

    The single source of truth for the columnar hot loop: the engine's
    serial path, every scoring-shard thread *and* every scoring worker
    process (serve/procpool.py) run this exact function, which is what
    makes the three rungs of the degradation ladder bit-identical.

    Results are pushed with ``feature=None`` — only the page's survivors
    fetch their feature objects (in :meth:`SearchEngine._search`), so
    the hot loop never touches the feature dict.
    """
    matches = 0
    is_empty = query.is_empty
    ids = cscorer.view.ids
    score_row = cscorer.score_row_bounded
    floor = top.floor
    push = top.push
    for row in rows:
        breakdown, known_positive = score_row(row, floor())
        if known_positive:
            matches += 1
        if breakdown is None:
            continue  # provably below the current top-k floor
        if breakdown.total <= 0.0 and not is_empty:
            continue
        push(
            SearchResult(
                dataset_id=ids[row],
                score=breakdown.total,
                breakdown=breakdown,
                feature=None,
            )
        )
    return matches


class SearchEngine:
    """Ranked similarity search over a catalog store.

    Scoring optionally *shards*: when ``shard_workers > 1`` and the
    post-prune candidate set has at least ``shard_threshold`` entries,
    it is partitioned into contiguous chunks scored on a thread pool,
    each chunk through its own :class:`_TopK` heap, then merged into
    the global heap.  The merge is exact — every global top-``k``
    result is by definition in its own shard's top-``k``, so pushing
    each shard's survivors through the global heap reproduces the
    serial page (ids, scores, order, breakdowns) precisely.  Below the
    threshold (or with ``shard_workers`` unset) the serial path runs
    unchanged.

    Above the thread shards sits an optional *process pool* rung
    (``procpool`` — see :class:`repro.serve.procpool.ProcessPoolScorer`,
    duck-typed here so ``core`` never imports the serving layer): when a
    pool is attached and holds the current snapshot version, columnar
    scoring fans out across worker processes instead of threads.  The
    pool answers ``None`` whenever it cannot serve (version not yet
    shipped, broken pool), and the query falls through to thread shards
    and then serial — every rung produces the identical page.
    """

    def __init__(
        self,
        catalog: CatalogStore,
        hierarchy: ConceptHierarchy | None = None,
        indexes: CatalogIndexes | None = None,
        config: ScoringConfig | None = None,
        epsilon: float = 1e-3,
        cache: QueryCache | bool = True,
        shard_workers: int | None = None,
        shard_threshold: int = 1024,
        executor: ThreadPoolExecutor | None = None,
        columnar: bool = True,
        procpool=None,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must lie in (0, 1)")
        if shard_threshold < 1:
            raise ValueError("shard_threshold must be positive")
        self.catalog = catalog
        self.hierarchy = hierarchy
        self.indexes = indexes
        self.config = config or ScoringConfig()
        self.epsilon = epsilon
        # True: engine-private cache; False: no caching; or pass a
        # QueryCache instance to share one across engines.
        if cache is True:
            cache = QueryCache()
        self.cache = cache if isinstance(cache, QueryCache) else None
        self.shard_workers = shard_workers
        self.shard_threshold = shard_threshold
        # Pass a shared executor (the serving layer does, so engine
        # rebuilds on snapshot refresh don't churn threads); otherwise
        # one is created lazily on the first sharded query and owned by
        # this engine (release it with close()).
        self._executor = executor
        self._owns_executor = False
        self._horizons: dict[tuple[float, str], float] = {}
        # Columnar fast path: score over frozen facet columns instead of
        # feature objects (bit-identical results — see core/columnar.py).
        # Disable to force the object scorer, e.g. for A/B benchmarks.
        self.columnar = columnar
        self._columnar_cache: ColumnarSnapshot | None = None
        # Optional process-pool scorer (the serving layer attaches one);
        # duck-typed: wants(version, n_rows) / score(query, limit,
        # version, rows).  Not owned by the engine — whoever installed
        # it closes it.
        self.procpool = procpool

    def close(self) -> None:
        """Release the shard executor if this engine created one."""
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._owns_executor = False

    def build_indexes(self, cell_degrees: float = 0.5) -> CatalogIndexes:
        """Build (and attach) fresh indexes over the current catalog."""
        with get_telemetry().span("index.build", size=len(self.catalog)):
            self.indexes = CatalogIndexes.build(
                list(self.catalog),
                cell_degrees=cell_degrees,
                catalog_version=self.catalog.version,
            )
        return self.indexes

    def refresh_indexes(
        self,
        added: Iterable[DatasetFeature] = (),
        removed: Iterable[str] = (),
        updated: Iterable[DatasetFeature] = (),
    ) -> CatalogIndexes:
        """Fold a known catalog delta into the attached indexes.

        O(changed) instead of the O(catalog) full rebuild (above a churn
        threshold :meth:`~repro.catalog.index.CatalogIndexes.apply`
        rebuilds anyway, which is then the cheaper move).  Builds fresh
        indexes when none are attached yet.
        """
        if self.indexes is None:
            return self.build_indexes()
        return self.indexes.apply(
            added=added,
            removed=removed,
            updated=updated,
            catalog_version=self.catalog.version,
            rebuild_from=self.catalog,
        )

    def _indexes_current(self) -> bool:
        """Whether the attached indexes reflect the live catalog.

        Compares the catalog's monotonic mutation counter against the
        version the indexes were stamped with — a same-size replacement
        bumps the counter, so (unlike a length comparison) it cannot
        silently serve stale candidates.  Indexes built without a
        version stamp fall back to the length comparison.
        """
        if self.indexes is None:
            return False
        if self.indexes.catalog_version is None:
            return len(self.indexes) == len(self.catalog)
        return self.indexes.catalog_version == self.catalog.version

    def _decay_horizon(self, shape: str) -> float:
        """Memoized ``decay_horizon(self.epsilon, shape)``."""
        key = (self.epsilon, shape)
        horizon = self._horizons.get(key)
        if horizon is None:
            horizon = decay_horizon(self.epsilon, shape)
            self._horizons[key] = horizon
        return horizon

    def _term_weights(self, query: Query) -> tuple[float, float, float]:
        """(location, time, variables) total weights present in the query
        under the current config (0 when the term is absent/disabled)."""
        w_loc = (
            self.config.location_weight
            if query.has_spatial and self.config.use_location
            else 0.0
        )
        w_time = (
            self.config.time_weight
            if query.has_temporal and self.config.use_time
            else 0.0
        )
        w_vars = (
            sum(
                self.config.variable_weight * term.weight
                for term in query.variables
            )
            if query.variables and self.config.use_variables
            else 0.0
        )
        return w_loc, w_time, w_vars

    def _prefilter_store(self):
        """The catalog itself when it can prefilter candidates in SQL.

        Duck-typed on ``prefilter_mode`` (see
        :class:`~repro.catalog.sqlite_store.SqliteCatalog`): any store
        advertising a mode other than ``"none"`` also provides
        ``prefilter_candidates_near`` / ``prefilter_candidates_overlapping``.
        """
        if getattr(self.catalog, "prefilter_mode", "none") != "none":
            return self.catalog
        return None

    def _candidate_ids(self, query: Query) -> tuple[list[str], float | None]:
        """Candidate dataset ids plus an upper bound on the total score
        any *excluded* dataset could reach (None when nothing was pruned).

        Pruning drops datasets whose indexed term (location or time) has
        decayed below ``epsilon``; because the total is a weighted mean,
        such a dataset can still score up to ``(W - w_term (1 - eps))/W``
        through its other terms.  :meth:`search` uses the bound to decide
        whether the pruned remainder must be scanned after all.

        The candidate source is a ladder: current in-memory
        :class:`~repro.catalog.index.CatalogIndexes` when attached, else
        the store's own SQL pushdown prefilter (R*Tree or indexed range
        scan — see DESIGN note 15), else the unpruned full scan.  Every
        rung returns a *superset* of the datasets whose indexed term is
        above epsilon, so the page stays exact regardless of the rung.
        """
        w_loc, w_time, w_vars = self._term_weights(query)
        total_weight = w_loc + w_time + w_vars
        use_indexes = self._indexes_current()
        pushdown = None if use_indexes else self._prefilter_store()
        if (not use_indexes and pushdown is None) or total_weight <= 0.0:
            # No candidate source — or every weight disabled/zero, where
            # all scores are equal, no term can prune (and the bound
            # below would divide by zero).
            return self.catalog.dataset_ids(), None
        candidates: set[str] | None = None
        excluded_bound = 0.0
        if query.location is not None and self.config.use_location:
            # Distance beyond which the location term alone is below
            # epsilon: the query radius plus the decay horizon.
            horizon_km = self.config.location_decay_km * self._decay_horizon(
                self.config.decay_shape
            )
            radius_km = query.radius_km + horizon_km
            if pushdown is not None:
                spatial = pushdown.prefilter_candidates_near(
                    query.location, radius_km
                )
            else:
                spatial = self.indexes.spatial.candidates_near(
                    query.location, radius_km
                )
            if spatial is not None:  # None: margin covers the globe
                candidates = spatial
                excluded_bound = max(
                    excluded_bound,
                    (total_weight - w_loc * (1.0 - self.epsilon))
                    / total_weight,
                )
        if query.interval is not None and self.config.use_time:
            margin = (
                self.config.time_decay_days
                * SECONDS_PER_DAY
                * self._decay_horizon(self.config.decay_shape)
            )
            if pushdown is not None:
                temporal = pushdown.prefilter_candidates_overlapping(
                    query.interval, margin_seconds=margin
                )
            else:
                temporal = self.indexes.temporal.candidates_overlapping(
                    query.interval, margin_seconds=margin
                )
            if temporal is not None:
                candidates = (
                    temporal if candidates is None else candidates & temporal
                )
                excluded_bound = max(
                    excluded_bound,
                    (total_weight - w_time * (1.0 - self.epsilon))
                    / total_weight,
                )
        if candidates is None:
            return self.catalog.dataset_ids(), None
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count(
                "prefilter.pushdown" if pushdown is not None
                else "prefilter.python"
            )
        all_ids = self.catalog.dataset_ids()
        if telemetry.enabled:
            telemetry.count("prefilter.candidates_in", len(all_ids))
            telemetry.count(
                "prefilter.candidates_out",
                min(len(candidates), len(all_ids)),
            )
        if len(candidates) >= len(all_ids):
            return all_ids, None
        return sorted(candidates), excluded_bound

    def _score_into(
        self, scorer: QueryScorer, query: Query, ids, top: _TopK
    ) -> int:
        """Score ``ids`` into the top-k heap; returns known matches."""
        matches = 0
        get = self.catalog.get
        is_empty = query.is_empty
        for dataset_id in ids:
            feature = get(dataset_id)
            breakdown, known_positive = scorer.score_bounded(
                feature, top.floor()
            )
            if known_positive:
                matches += 1
            if breakdown is None:
                continue  # provably below the current top-k floor
            if breakdown.total <= 0.0 and not is_empty:
                continue
            top.push(
                SearchResult(
                    dataset_id=dataset_id,
                    score=breakdown.total,
                    breakdown=breakdown,
                    feature=feature,
                )
            )
        return matches

    def columnar_view(self) -> ColumnarSnapshot | None:
        """The frozen columnar view of the current catalog, or None.

        A :class:`~repro.catalog.store.CatalogSnapshot` freezes (and
        caches) its own columns, so every engine and request over the
        same snapshot shares one view.  Over a *live* store the view is
        frozen lazily and cached per catalog version; if a writer races
        the freeze, this returns None and the query falls back to the
        object scorer rather than serving columns of unknown vintage.
        """
        if not self.columnar:
            return None
        catalog = self.catalog
        frozen = getattr(catalog, "columnar", None)
        if callable(frozen):  # CatalogSnapshot: one shared freeze
            return frozen()
        view = self._columnar_cache
        version = catalog.version
        if view is not None and view.version == version:
            return view
        view = ColumnarSnapshot.freeze(catalog.features(), version=version)
        if catalog.version != version:
            return None  # raced a writer; stay on the object path
        self._columnar_cache = view
        return view

    def _score_rows_into(
        self,
        cscorer: ColumnarScorer,
        query: Query,
        rows: Sequence[int],
        top: _TopK,
    ) -> int:
        """Columnar twin of :meth:`_score_into`: rows, not features.

        Delegates to the module-level :func:`score_rows_into` — the one
        loop shared with shard threads and pool worker processes.
        """
        return score_rows_into(cscorer, query, rows, top)

    def _score_candidates_columnar(
        self,
        scorer: QueryScorer,
        query: Query,
        ids: Sequence[str],
        top: _TopK,
        view: ColumnarSnapshot,
    ) -> int | None:
        """Score candidate ids over the columnar view; known matches.

        Returns None when some id is absent from the view (a staleness
        race) — the caller falls back to the object path.  Sharding
        partitions contiguous *row ranges* instead of id lists; the
        merge argument is unchanged (DESIGN notes 14 and 15), and the
        read-only :class:`ColumnarScorer` is safely shared by every
        shard thread.
        """
        rows: Sequence[int]
        if len(ids) == len(view):
            rows = range(len(view))
        else:
            row_of = view.row_of
            try:
                rows = [row_of[dataset_id] for dataset_id in ids]
            except KeyError:
                return None
        pool = self.procpool
        if pool is not None and pool.wants(view.version, len(rows)):
            pooled = pool.score(query, top.limit, view.version, rows)
            if pooled is not None:
                matches, hits = pooled
                for result in hits:
                    top.push(result)
                return matches
            # Pool could not serve this query (broken workers, racing
            # refresh): fall through to thread shards — same page.
        cscorer = ColumnarScorer(scorer, view)
        workers = self._effective_shard_workers(len(rows))
        if workers <= 1:
            return self._score_rows_into(cscorer, query, rows, top)
        telemetry = get_telemetry()
        telemetry.count("search.sharded_queries")
        # Shard threads carry the submitting request with them: same
        # registry, same request context, spans re-parented under the
        # request's open span — one request, one span tree.
        parent = telemetry.active_path()
        context = current_request()
        chunk = (len(rows) + workers - 1) // workers
        shards = [rows[i : i + chunk] for i in range(0, len(rows), chunk)]

        def run_shard(shard: Sequence[int]) -> tuple[int, _TopK]:
            with use_telemetry(telemetry), use_request(context):
                with telemetry.parented(parent):
                    with telemetry.span("search.shard", rows=len(shard)):
                        shard_top = _TopK(top.limit)
                        matched = self._score_rows_into(
                            cscorer, query, shard, shard_top
                        )
            return matched, shard_top

        matches = 0
        for matched, shard_top in self._shard_executor().map(
            run_shard, shards
        ):
            matches += matched
            for item in shard_top._heap:
                top.push(item.result)
        return matches

    def _effective_shard_workers(self, n_candidates: int) -> int:
        """How many scoring shards this query should use (1 = serial)."""
        if self.shard_workers is None or self.shard_workers <= 1:
            return 1
        if n_candidates < self.shard_threshold:
            return 1
        return min(self.shard_workers, n_candidates)

    def _shard_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shard_workers,
                thread_name_prefix="repro-shard",
            )
            self._owns_executor = True
        return self._executor

    def _score_candidates(
        self,
        scorer: QueryScorer,
        query: Query,
        ids: Sequence[str],
        top: _TopK,
    ) -> int:
        """Score ``ids`` into ``top``, sharding across threads when the
        candidate set is large enough; returns known matches.

        Each shard scores through a private :class:`QueryScorer` (its
        name-similarity memo is not shared across threads) and a private
        heap; merging the shard heaps through the global one is exact
        because every global top-``k`` result is necessarily in its own
        shard's top-``k``.  ``total_matches`` stays a valid lower bound
        (each shard counts with its own floor), though the exact value
        may differ from the serial scan's — only the returned page is
        pinned equal.
        """
        workers = self._effective_shard_workers(len(ids))
        if workers <= 1:
            return self._score_into(scorer, query, ids, top)
        telemetry = get_telemetry()
        telemetry.count("search.sharded_queries")
        parent = telemetry.active_path()
        context = current_request()
        chunk = (len(ids) + workers - 1) // workers
        shards = [ids[i : i + chunk] for i in range(0, len(ids), chunk)]

        def run_shard(shard: Sequence[str]) -> tuple[int, _TopK]:
            with use_telemetry(telemetry), use_request(context):
                with telemetry.parented(parent):
                    with telemetry.span("search.shard", rows=len(shard)):
                        shard_scorer = QueryScorer(
                            query,
                            hierarchy=self.hierarchy,
                            config=self.config,
                        )
                        shard_top = _TopK(top.limit)
                        matched = self._score_into(
                            shard_scorer, query, shard, shard_top
                        )
            return matched, shard_top

        matches = 0
        for matched, shard_top in self._shard_executor().map(
            run_shard, shards
        ):
            matches += matched
            for item in shard_top._heap:
                top.push(item.result)
        return matches

    def _cache_key(self, query: Query, limit: int):
        # Everything the result depends on.  The hierarchy has no cheap
        # content fingerprint, so its identity stands in: replacing it
        # turns into misses (safe), mutating it in place requires an
        # explicit cache.clear().
        return (
            self.catalog.version,
            query,
            limit,
            self.config,
            self.epsilon,
            id(self.hierarchy) if self.hierarchy is not None else None,
        )

    def migrate_cache_from(
        self,
        previous: "SearchEngine",
        touched: Sequence[tuple[DatasetFeature | None, DatasetFeature | None]],
    ) -> int:
        """Carry provably-unaffected cache entries across a refresh.

        ``touched`` holds ``(old_state, new_state)`` per dataset the
        publish delta touched (``None`` for absent sides: a fresh
        insert has no old state, a removal no new one).  An entry
        cached at the previous catalog version may be re-keyed to the
        new version iff its query is non-empty and **every** touched
        state — old and new — scores exactly ``0.0`` for it.

        Why that is exact: unchanged datasets keep their scores (their
        feature objects are structurally shared between the snapshots),
        and a dataset whose total is 0.0 for a non-empty query (a) is
        never placed on the page (``_search`` skips zero totals), and
        (b) is never counted in ``total_matches`` (``known_positive``
        requires a positive weighted sum at every prune rung).  So the
        page membership, order, breakdowns and match count the old
        version computed are all still what the new version would
        compute.  Any positive score on either side conservatively
        invalidates — the dataset might enter or leave the page.
        Empty queries match everything, so any edit shifts them.

        Returns the number of entries carried.  Scoring runs outside
        the cache lock (see :meth:`QueryCache.items`).
        """
        cache = self.cache
        if cache is None or previous.cache is not cache:
            return 0
        if (
            self.hierarchy is not previous.hierarchy
            or self.config != previous.config
            or self.epsilon != previous.epsilon
        ):
            return 0
        old_version = previous.catalog.version
        new_version = self.catalog.version
        if new_version == old_version:
            return 0
        states = [
            feature
            for pair in touched
            for feature in pair
            if feature is not None
        ]
        hierarchy_key = (
            id(self.hierarchy) if self.hierarchy is not None else None
        )
        carried = 0
        scorers: dict[Query, QueryScorer] = {}
        for key, value in cache.items():
            if not isinstance(key, tuple) or len(key) != 6:
                continue
            version, query, limit, config, epsilon, key_hierarchy = key
            if (
                version != old_version
                or key_hierarchy != hierarchy_key
                or config != self.config
                or epsilon != self.epsilon
            ):
                continue
            if query.is_empty:
                continue
            scorer = scorers.get(query)
            if scorer is None:
                scorer = QueryScorer(
                    query, hierarchy=self.hierarchy, config=self.config
                )
                scorers[query] = scorer
            if any(
                scorer.score(feature).total != 0.0 for feature in states
            ):
                continue
            cache.put(
                (new_version, query, limit, config, epsilon, hierarchy_key),
                value,
            )
            carried += 1
        return carried

    def search(self, query: Query, limit: int = 10) -> SearchResults:
        """Top-``limit`` datasets by similarity to ``query``.

        Exact: index pruning is verified against the excluded-score upper
        bound, the pruned remainder is scanned whenever an excluded
        dataset could still reach the top-``limit``, and the bounded
        top-k heap keeps precisely the datasets a full score-and-sort
        would.  Results are sorted by descending score, ties broken by
        dataset id for determinism.

        Repeated queries are served from the version-keyed LRU cache
        (when enabled); any catalog mutation bumps the store version and
        misses past entries.  Treat returned results as immutable.

        Raises:
            ValueError: if ``limit`` is not positive.
        """
        if limit <= 0:
            raise ValueError("limit must be positive")
        telemetry = get_telemetry()
        telemetry.count("search.queries")
        with telemetry.span("search.query", limit=limit) as span:
            results = self._search(query, limit, span)
        telemetry.observe("search.query_seconds", span.duration)
        return results

    def _search(self, query: Query, limit: int, span) -> SearchResults:
        telemetry = get_telemetry()
        context = current_request()
        key = self._cache_key(query, limit)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                telemetry.count("search.cache_hits")
                span.set("cached", True)
                if context is not None:
                    context.annotate(
                        cache_hit=True,
                        candidates_in=len(self.catalog),
                        candidates_out=0,
                        results=len(cached),
                    )
                return cached
            telemetry.count("search.cache_misses")
        scorer = QueryScorer(
            query, hierarchy=self.hierarchy, config=self.config
        )
        with telemetry.span("search.prefilter") as prefilter_span:
            candidate_ids, excluded_bound = self._candidate_ids(query)
            prefilter_span.set("candidates_in", len(self.catalog))
            prefilter_span.set("candidates_out", len(candidate_ids))
        if context is not None:
            context.annotate(
                cache_hit=False,
                candidates_in=len(self.catalog),
                candidates_out=len(candidate_ids),
            )
        if telemetry.enabled:
            pruned = len(self.catalog) - len(candidate_ids)
            if pruned > 0:
                telemetry.count("search.candidates_pruned", pruned)
            span.set("candidates", len(candidate_ids))
        top = _TopK(limit)
        view = self.columnar_view()
        matches: int | None = None
        if view is not None:
            matches = self._score_candidates_columnar(
                scorer, query, candidate_ids, top, view
            )
            if matches is None:
                view = None  # staleness race: object path below
        if matches is None:
            matches = self._score_candidates(
                scorer, query, candidate_ids, top
            )
        if excluded_bound is not None:
            floor = top.floor()
            kth_score = floor[0] if floor is not None else 0.0
            if kth_score < excluded_bound:
                telemetry.count("search.prune_rescans")
                remainder = sorted(
                    set(self.catalog.dataset_ids()) - set(candidate_ids)
                )
                rescanned: int | None = None
                if view is not None:
                    rescanned = self._score_candidates_columnar(
                        scorer, query, remainder, top, view
                    )
                if rescanned is None:
                    rescanned = self._score_candidates(
                        scorer, query, remainder, top
                    )
                matches += rescanned
        page = top.sorted_results()
        if any(result.feature is None for result in page):
            # Columnar hits carry no feature; fetch only the survivors.
            get = self.catalog.get
            page = [
                result if result.feature is not None
                else replace(result, feature=get(result.dataset_id))
                for result in page
            ]
        results = SearchResults(page, total_matches=matches)
        if context is not None:
            context.annotate(results=len(results))
        if self.cache is not None:
            self.cache.put(key, results)
        return results

    def stats(self) -> dict:
        """Operational counters: cache hit/miss/eviction, index state."""
        return {
            "catalog_version": self.catalog.version,
            "catalog_size": len(self.catalog),
            "indexed": self.indexes is not None,
            "indexes_current": self._indexes_current(),
            "columnar": self.columnar,
            "prefilter_mode": getattr(
                self.catalog, "prefilter_mode", "none"
            ),
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def score_all(self, query: Query) -> dict[str, float]:
        """Score of every dataset (no pruning) — used by quality metrics."""
        scorer = QueryScorer(
            query, hierarchy=self.hierarchy, config=self.config
        )
        view = self.columnar_view()
        if view is not None:
            cscorer = ColumnarScorer(scorer, view)
            score_row = cscorer.score_row
            return {
                dataset_id: score_row(row).total
                for row, dataset_id in enumerate(view.ids)
            }
        return {
            feature.dataset_id: scorer.score(feature).total
            for feature in self.catalog
        }


class BooleanSearchEngine:
    """The unranked hard-filter baseline.

    Matching rules (all present terms must hold):

    * location: the query point within ``radius_km`` of the dataset box
      (or query region intersecting it),
    * time: intervals overlap,
    * each variable term: some searchable variable has *exactly* the
      requested name (hierarchy expansion applied when provided, since
      portals do support category menus) and its observed range
      intersects the requested one.
    """

    def __init__(
        self,
        catalog: CatalogStore,
        hierarchy: ConceptHierarchy | None = None,
    ) -> None:
        self.catalog = catalog
        self.hierarchy = hierarchy

    def _matches(self, query: Query, feature: DatasetFeature) -> bool:
        if query.location is not None:
            if (
                feature.bbox.distance_km_to_point(query.location)
                > query.radius_km
            ):
                return False
        if query.region is not None:
            if not feature.bbox.intersects(query.region):
                return False
        if query.interval is not None:
            if not feature.interval.overlaps(query.interval):
                return False
        for term in query.variables:
            expansion = (
                self.hierarchy.expand(term.name)
                if self.hierarchy is not None
                else {term.name}
            )
            expansion = expansion | {term.name}
            hit = False
            for entry in feature.searchable_variables():
                if entry.name not in expansion:
                    continue
                if term.has_range:
                    lo = term.low if term.low is not None else entry.minimum
                    hi = term.high if term.high is not None else entry.maximum
                    if math.isnan(entry.minimum) or not (
                        entry.minimum <= hi and lo <= entry.maximum
                    ):
                        continue
                hit = True
                break
            if not hit:
                return False
        return True

    def search(self, query: Query, limit: int = 10) -> SearchResults:
        """Datasets matching *all* terms, in dataset-id order (no ranking).

        The scan continues past ``limit`` so ``total_matches`` is the
        exact match count — ``len(results) == limit`` alone cannot tell
        a full page from a truncated one.
        """
        if limit <= 0:
            raise ValueError("limit must be positive")
        out: list[SearchResult] = []
        total = 0
        for dataset_id in self.catalog.dataset_ids():
            feature = self.catalog.get(dataset_id)
            if not self._matches(query, feature):
                continue
            total += 1
            if len(out) < limit:
                out.append(
                    SearchResult(
                        dataset_id=dataset_id,
                        score=1.0,
                        breakdown=ScoreBreakdown(total=1.0),
                        feature=feature,
                    )
                )
        return SearchResults(out, total_matches=total)

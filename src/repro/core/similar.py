"""Search by example: "more datasets like this one".

A scientist who found one useful dataset wants its neighbours — same
water, same season, same variables.  Dataset-to-dataset similarity
reuses the ranking's distance machinery: spatial gap between footprints,
temporal gap between coverages, and Jaccard overlap of searchable
variable sets (hierarchy-expanded so ``fluores375`` and ``chlorophyll``
count as related).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.records import DatasetFeature
from ..catalog.store import CatalogStore
from ..geo import SECONDS_PER_DAY
from ..hierarchy import ConceptHierarchy
from .scoring import ScoringConfig, decay


@dataclass(frozen=True, slots=True)
class SimilarResult:
    """One neighbour with its per-dimension similarities."""

    dataset_id: str
    score: float
    spatial: float
    temporal: float
    variables: float
    feature: DatasetFeature

    def explain(self) -> str:
        """Human-readable breakdown."""
        return (
            f"score={self.score:.3f} spatial={self.spatial:.3f} "
            f"temporal={self.temporal:.3f} variables={self.variables:.3f}"
        )


def _variable_groups(
    feature: DatasetFeature, hierarchy: ConceptHierarchy | None
) -> set[str]:
    """Top-level concept groups of a dataset's searchable variables."""
    groups = set()
    for entry in feature.searchable_variables():
        if hierarchy is not None and entry.name in hierarchy:
            groups.add(hierarchy.group_of(entry.name))
        else:
            groups.add(entry.name)
    return groups


def feature_similarity(
    a: DatasetFeature,
    b: DatasetFeature,
    hierarchy: ConceptHierarchy | None = None,
    config: ScoringConfig | None = None,
) -> tuple[float, float, float, float]:
    """(total, spatial, temporal, variable) similarity of two features."""
    config = config or ScoringConfig()
    distance_km = a.bbox.distance_km_to_box(b.bbox)
    spatial = decay(
        distance_km / config.location_decay_km, config.decay_shape
    )
    gap_days = a.interval.gap_seconds(b.interval) / SECONDS_PER_DAY
    temporal = decay(gap_days / config.time_decay_days, config.decay_shape)
    groups_a = _variable_groups(a, hierarchy)
    groups_b = _variable_groups(b, hierarchy)
    if groups_a or groups_b:
        variables = len(groups_a & groups_b) / len(groups_a | groups_b)
    else:
        variables = 1.0
    weights = (
        config.location_weight, config.time_weight, config.variable_weight
    )
    total = (
        weights[0] * spatial + weights[1] * temporal + weights[2] * variables
    ) / sum(weights)
    return total, spatial, temporal, variables


def similar_datasets(
    catalog: CatalogStore,
    dataset_id: str,
    limit: int = 5,
    hierarchy: ConceptHierarchy | None = None,
    config: ScoringConfig | None = None,
) -> list[SimilarResult]:
    """The ``limit`` datasets most similar to ``dataset_id``.

    The seed dataset itself is excluded.  Deterministic ordering
    (score descending, then id).

    Raises:
        ValueError: if ``limit`` is not positive.
        DatasetNotFoundError: if the seed dataset is not cataloged.
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    seed = catalog.get(dataset_id)
    results = []
    for candidate in catalog:
        if candidate.dataset_id == dataset_id:
            continue
        total, spatial, temporal, variables = feature_similarity(
            seed, candidate, hierarchy=hierarchy, config=config
        )
        results.append(
            SimilarResult(
                dataset_id=candidate.dataset_id,
                score=total,
                spatial=spatial,
                temporal=temporal,
                variables=variables,
                feature=candidate,
            )
        )
    results.sort(key=lambda r: (-r.score, r.dataset_id))
    return results[:limit]

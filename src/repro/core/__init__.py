"""Core contribution: feature extraction, ranked search, summaries."""

from .facets import (
    FacetCounts,
    compute_facets,
    hierarchy_counts,
    render_facet_sidebar,
    render_menu_with_counts,
)
from .errors import (
    ErrorCode,
    ErrorRecord,
    OverloadedError,
    StoreBusyError,
    TransientError,
    TransientReadError,
    WorkerFailure,
    classify_exception,
    is_transient,
)
from .faults import FaultSchedule
from .features import EmptyDatasetError, extract_feature
from .metrics import (
    average_precision,
    dcg_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from .cache import QueryCache
from .qparser import QueryParseError, parse_query
from .retry import DEFAULT_RETRY, RetryPolicy, retry_call
from .query import EmptyQueryError, Query, VariableTerm
from .scoring import (
    DECAY_SHAPES,
    QueryScorer,
    ScoreBreakdown,
    ScoringConfig,
    decay,
    decay_horizon,
    location_similarity,
    name_similarity,
    range_similarity,
    range_similarity_values,
    score_feature,
    time_similarity,
    variable_term_similarity,
)
from .columnar import ColumnarScorer, ColumnarSnapshot
from .search import (
    BooleanSearchEngine,
    SearchEngine,
    SearchResult,
    SearchResults,
)
from .similar import SimilarResult, feature_similarity, similar_datasets
from .summary import DatasetSummary, VariableSummary, summarize

__all__ = [
    "BooleanSearchEngine",
    "ColumnarScorer",
    "ColumnarSnapshot",
    "DatasetSummary",
    "DECAY_SHAPES",
    "DEFAULT_RETRY",
    "EmptyDatasetError",
    "EmptyQueryError",
    "ErrorCode",
    "ErrorRecord",
    "FaultSchedule",
    "OverloadedError",
    "RetryPolicy",
    "StoreBusyError",
    "TransientError",
    "TransientReadError",
    "WorkerFailure",
    "Query",
    "QueryCache",
    "QueryParseError",
    "QueryScorer",
    "ScoreBreakdown",
    "ScoringConfig",
    "SearchEngine",
    "SearchResult",
    "SearchResults",
    "SimilarResult",
    "VariableSummary",
    "VariableTerm",
    "FacetCounts",
    "average_precision",
    "classify_exception",
    "compute_facets",
    "decay",
    "decay_horizon",
    "dcg_at_k",
    "extract_feature",
    "feature_similarity",
    "hierarchy_counts",
    "is_transient",
    "location_similarity",
    "name_similarity",
    "ndcg_at_k",
    "parse_query",
    "precision_at_k",
    "recall_at_k",
    "range_similarity",
    "range_similarity_values",
    "render_facet_sidebar",
    "render_menu_with_counts",
    "retry_call",
    "score_feature",
    "similar_datasets",
    "summarize",
    "time_similarity",
    "variable_term_similarity",
]

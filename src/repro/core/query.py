"""The query model: location, time and variable terms.

The poster's example information need — "observations collected near
[lat = 45.5, lon = -124.4] in mid-2010, with temperature between 5-10C"
— becomes::

    Query(
        location=GeoPoint(45.5, -124.4),
        interval=TimeInterval.from_datetimes(
            datetime(2010, 5, 1), datetime(2010, 8, 31)),
        variables=[VariableTerm('water_temperature', low=5.0, high=10.0)],
    )

Every part is optional; a query with no terms matches everything with a
neutral score.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import BoundingBox, GeoPoint, TimeInterval


class EmptyQueryError(ValueError):
    """Raised when an engine requires at least one query term."""


@dataclass(frozen=True, slots=True)
class VariableTerm:
    """One requested variable, optionally with a value range.

    ``name`` is matched against catalog variable names after hierarchy
    expansion, so a query for ``fluorescence`` matches
    ``fluorescence_375nm``.  ``low``/``high`` bound the *observed values*
    the scientist cares about ("temperature between 5-10C").
    """

    name: str
    low: float | None = None
    high: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("term weight must be positive")
        if (
            self.low is not None
            and self.high is not None
            and self.low > self.high
        ):
            raise ValueError(f"low {self.low} > high {self.high}")

    @property
    def has_range(self) -> bool:
        """True when the term constrains observed values."""
        return self.low is not None or self.high is not None


@dataclass(frozen=True, slots=True)
class Query:
    """A ranked-search query over the metadata catalog."""

    location: GeoPoint | None = None
    region: BoundingBox | None = None
    interval: TimeInterval | None = None
    variables: tuple[VariableTerm, ...] = ()
    radius_km: float = 50.0  # pruning radius for indexed candidate lookup

    def __post_init__(self) -> None:
        if self.location is not None and self.region is not None:
            raise ValueError("give either a location point or a region")
        if self.radius_km <= 0:
            raise ValueError("radius_km must be positive")
        # Accept a list for ergonomics; store a tuple for immutability.
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def has_spatial(self) -> bool:
        """True when the query carries a location or region term."""
        return self.location is not None or self.region is not None

    @property
    def has_temporal(self) -> bool:
        """True when the query carries a time term."""
        return self.interval is not None

    @property
    def is_empty(self) -> bool:
        """True when no term is present at all."""
        return not (self.has_spatial or self.has_temporal or self.variables)

    def variable_names(self) -> list[str]:
        """Requested variable names, in query order."""
        return [term.name for term in self.variables]

    def describe(self) -> str:
        """A one-line, human-readable restatement of the query."""
        parts = []
        if self.location is not None:
            parts.append(f"near {self.location}")
        if self.region is not None:
            b = self.region
            parts.append(
                f"in region [{b.min_lat:.3f},{b.min_lon:.3f}]"
                f"..[{b.max_lat:.3f},{b.max_lon:.3f}]"
            )
        if self.interval is not None:
            parts.append(f"during {self.interval}")
        for term in self.variables:
            if term.low is not None and term.high is not None:
                parts.append(f"{term.name} in [{term.low}, {term.high}]")
            elif term.low is not None:
                parts.append(f"{term.name} >= {term.low}")
            elif term.high is not None:
                parts.append(f"{term.name} <= {term.high}")
            else:
                parts.append(term.name)
        return "; ".join(parts) if parts else "(match all)"

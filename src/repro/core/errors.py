"""Structured pipeline error taxonomy.

The wrangling loop only converges on a clean catalog if "run & rerun"
survives the archive as it actually is — truncated transfers, garbled
rows, flaky storage.  Components used to record failures as free-form
strings in their reports; tests and operators then had to grep.  This
module gives every failure a typed, machine-checkable record:

* :class:`ErrorCode` — the closed set of failure categories the
  pipeline distinguishes (parse, transient read, store busy, worker
  error, worker crash),
* :class:`ErrorRecord` — one failure: code, path, message, whether it
  was transient and how many attempts were spent on it,
* the transient-fault exception family (:class:`TransientError` and
  friends) that the retry layer in :mod:`repro.core.retry` knows how to
  classify, and
* :class:`WorkerFailure` — the picklable envelope a scan worker returns
  when a per-file exception must cross a process boundary as *data*
  instead of aborting the pool.

Nothing here imports the pipeline; the taxonomy sits below every layer
that reports through it.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from enum import Enum


class ErrorCode(Enum):
    """The failure categories the pipeline distinguishes."""

    #: The file's content could not be parsed in its claimed format.
    PARSE = "parse-error"
    #: An archive read failed transiently (flaky storage, interrupted
    #: transfer) and the retry budget ran out.
    TRANSIENT_READ = "transient-read"
    #: The catalog store reported busy/locked past the retry budget.
    STORE_BUSY = "store-busy"
    #: A per-file exception other than a parse error (bad data that
    #: parses but cannot be summarized, or a bug in an extractor).
    WORKER_ERROR = "worker-error"
    #: The worker pool itself died; the affected chunk was recomputed
    #: serially in the parent.
    WORKER_CRASH = "worker-crash"
    #: The serving layer's admission queue is full; the request was
    #: rejected without being executed (retry after backoff).
    OVERLOADED = "overloaded"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class ErrorRecord:
    """One machine-checkable pipeline failure."""

    code: ErrorCode
    message: str
    path: str | None = None
    transient: bool = False
    attempts: int = 1

    def __str__(self) -> str:
        where = f" [{self.path}]" if self.path else ""
        spent = (
            f" (gave up after {self.attempts} attempts)"
            if self.attempts > 1
            else ""
        )
        return f"{self.code.value}{where}: {self.message}{spent}"


# --------------------------------------------------------------------------
# Transient faults — the family the retry layer is allowed to absorb.
# --------------------------------------------------------------------------


class TransientError(Exception):
    """A fault that may succeed if simply tried again."""


class TransientReadError(TransientError):
    """A transient archive read failure (flaky storage, torn transfer)."""


class StoreBusyError(TransientError):
    """The catalog store is busy/locked right now."""


class OverloadedError(TransientError):
    """The search service's bounded admission queue is full.

    Raised *before* any work is done on the request — the typed
    backpressure signal of the serving layer.  Transient by definition:
    a client that backs off and retries will eventually be admitted
    (load permitting), which is why it joins the retryable family.
    """

    def __init__(
        self,
        message: str = "service overloaded: admission queue full",
        in_flight: int | None = None,
        capacity: int | None = None,
    ) -> None:
        if in_flight is not None and capacity is not None:
            message = f"{message} ({in_flight}/{capacity} slots taken)"
        super().__init__(message)
        self.in_flight = in_flight
        self.capacity = capacity


#: Substrings that mark a :class:`sqlite3.OperationalError` as the
#: transient busy/locked condition rather than a real schema/SQL error.
_SQLITE_TRANSIENT_MARKERS = ("locked", "busy")


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is worth retrying.

    Covers the explicit :class:`TransientError` family plus SQLite's
    busy/locked ``OperationalError`` — the only ``OperationalError``
    texts that mean "try again", as opposed to a genuine SQL failure.
    """
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, sqlite3.OperationalError):
        text = str(exc).lower()
        return any(marker in text for marker in _SQLITE_TRANSIENT_MARKERS)
    return False


def classify_exception(
    exc: BaseException, path: str | None = None, attempts: int = 1
) -> ErrorRecord:
    """Fold an exception into the taxonomy.

    Parse errors are classified at the call site (the scan already
    distinguishes :class:`~repro.archive.formats.FormatError` outcomes);
    this helper covers the infrastructure faults.
    """
    transient = is_transient(exc)
    if isinstance(exc, OverloadedError):
        code = ErrorCode.OVERLOADED
    elif isinstance(exc, StoreBusyError) or (
        transient and isinstance(exc, sqlite3.OperationalError)
    ):
        code = ErrorCode.STORE_BUSY
    elif transient:
        code = ErrorCode.TRANSIENT_READ
    else:
        code = ErrorCode.WORKER_ERROR
    return ErrorRecord(
        code=code,
        message=f"{type(exc).__name__}: {exc}",
        path=path,
        transient=transient,
        attempts=attempts,
    )


@dataclass(frozen=True, slots=True)
class WorkerFailure:
    """A per-file exception, shipped across a process boundary as data.

    Scan workers must never raise: an exception escaping ``pool.map``
    aborts the whole scan.  Instead the worker wraps whatever went wrong
    in this picklable record; the parent quarantines the file and keeps
    going.
    """

    path: str
    error_type: str
    message: str

    @classmethod
    def from_exception(cls, path: str, exc: BaseException) -> "WorkerFailure":
        return cls(path=path, error_type=type(exc).__name__, message=str(exc))

    def __str__(self) -> str:
        return f"{self.error_type}: {self.message}"

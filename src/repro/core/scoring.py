"""Distance-based similarity scoring.

"Search results ranked on distance-based similarity to query terms."
Each query term yields a similarity in [0, 1]:

* **location** — exponential decay of the great-circle distance from the
  query point/region to the dataset's bounding box (1.0 inside).
* **time** — 1.0 when the dataset's interval overlaps the query window,
  else exponential decay of the gap.
* **variable** — per term, the product of a *name* similarity (1.0 for a
  hierarchy-expanded match, partial credit for near-miss strings) and a
  *range* similarity (overlap of the requested value range with the
  variable's observed [min, max], with decay on the gap when disjoint).

The dataset score is the weighted mean of the term similarities that are
*present in the query* — a query with only a location term ranks purely
by distance, matching the paper's partial-match behaviour (this is what
the boolean baseline cannot do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..catalog.records import DatasetFeature, VariableEntry
from ..geo import SECONDS_PER_DAY, TimeInterval
from ..hierarchy import ConceptHierarchy
from ..text import levenshtein_similarity, normalize_name
from .query import Query, VariableTerm


#: Decay shapes mapping a non-negative distance (in units of the decay
#: scale) to a similarity in [0, 1].  All three agree at distance 0
#: (similarity 1) and are monotone non-increasing:
#:
#: * ``exponential`` — ``exp(-d)``: smooth, never exactly zero.
#: * ``reciprocal``  — ``1 / (1 + d)``: heavier tail, gentler nearby.
#: * ``linear``      — ``max(0, 1 - d)``: hard cutoff at one scale unit.
DECAY_SHAPES = ("exponential", "reciprocal", "linear")


def decay(distance_in_scales: float, shape: str) -> float:
    """Apply a named decay shape to a scale-normalized distance.

    Raises:
        ValueError: for negative distances or unknown shapes.
    """
    if distance_in_scales < 0:
        raise ValueError("distance must be non-negative")
    if shape == "exponential":
        return math.exp(-distance_in_scales)
    if shape == "reciprocal":
        return 1.0 / (1.0 + distance_in_scales)
    if shape == "linear":
        return max(0.0, 1.0 - distance_in_scales)
    raise ValueError(f"unknown decay shape {shape!r}")


def decay_horizon(epsilon: float, shape: str) -> float:
    """The scale-normalized distance beyond which ``decay() <= epsilon``.

    This is what index pruning uses to stay exact for every shape.

    Raises:
        ValueError: for epsilon outside (0, 1) or unknown shapes.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must lie in (0, 1)")
    if shape == "exponential":
        return math.log(1.0 / epsilon)
    if shape == "reciprocal":
        return 1.0 / epsilon - 1.0
    if shape == "linear":
        return 1.0
    raise ValueError(f"unknown decay shape {shape!r}")


@dataclass(frozen=True, slots=True)
class ScoringConfig:
    """Tunable decay scales, shapes and weights of the ranking function."""

    location_decay_km: float = 100.0
    time_decay_days: float = 90.0
    range_decay_fraction: float = 1.0  # gap measured in query-range widths
    name_partial_threshold: float = 0.75  # below this, string sim scores 0
    location_weight: float = 1.0
    time_weight: float = 1.0
    variable_weight: float = 1.0
    decay_shape: str = "exponential"  # see DECAY_SHAPES
    use_location: bool = True  # ablation switches (A1)
    use_time: bool = True
    use_variables: bool = True

    def __post_init__(self) -> None:
        if self.location_decay_km <= 0 or self.time_decay_days <= 0:
            raise ValueError("decay scales must be positive")
        if not 0.0 <= self.name_partial_threshold <= 1.0:
            raise ValueError("name_partial_threshold must lie in [0, 1]")
        if self.decay_shape not in DECAY_SHAPES:
            raise ValueError(f"unknown decay shape {self.decay_shape!r}")


@dataclass(frozen=True, slots=True)
class ScoreBreakdown:
    """Per-term similarities behind one dataset's score (for the UI)."""

    total: float
    location: float | None = None
    time: float | None = None
    variables: tuple[tuple[str, float], ...] = ()

    def explain(self) -> str:
        """Human-readable breakdown line."""
        parts = [f"score={self.total:.3f}"]
        if self.location is not None:
            parts.append(f"location={self.location:.3f}")
        if self.time is not None:
            parts.append(f"time={self.time:.3f}")
        for name, sim in self.variables:
            parts.append(f"{name}={sim:.3f}")
        return " ".join(parts)


def location_similarity(
    query: Query, feature: DatasetFeature, config: ScoringConfig
) -> float:
    """Exponential decay of point/region-to-bbox distance; 1.0 inside."""
    if query.location is not None:
        distance_km = feature.bbox.distance_km_to_point(query.location)
    elif query.region is not None:
        distance_km = feature.bbox.distance_km_to_box(query.region)
    else:
        raise ValueError("query has no spatial term")
    return decay(distance_km / config.location_decay_km, config.decay_shape)


def time_similarity(
    interval: TimeInterval, feature: DatasetFeature, config: ScoringConfig
) -> float:
    """1.0 on overlap, else exponential decay of the gap in days."""
    gap_days = feature.interval.gap_seconds(interval) / SECONDS_PER_DAY
    return decay(gap_days / config.time_decay_days, config.decay_shape)


def range_similarity_values(
    term: VariableTerm,
    count: int,
    minimum: float,
    maximum: float,
    config: ScoringConfig,
) -> float:
    """Scalar core of :func:`range_similarity`, on bare stats values.

    The columnar scoring engine calls this over flat per-variable stat
    columns; :func:`range_similarity` delegates here with the entry's
    fields, which keeps the two scoring paths bit-identical.
    """
    if not term.has_range:
        return 1.0
    if count == 0 or math.isnan(minimum):
        return 0.0
    lo = term.low if term.low is not None else minimum
    hi = term.high if term.high is not None else maximum
    if lo > hi:  # half-open request entirely off the observed range
        lo, hi = hi, lo
    width = max(hi - lo, 1e-9)
    overlap_lo = max(lo, minimum)
    overlap_hi = min(hi, maximum)
    if overlap_hi >= overlap_lo:
        return min(1.0, (overlap_hi - overlap_lo) / width + 1e-12)
    gap = overlap_lo - overlap_hi
    return decay(
        gap / (width * config.range_decay_fraction), config.decay_shape
    )


def range_similarity(
    term: VariableTerm, entry: VariableEntry, config: ScoringConfig
) -> float:
    """Similarity of the requested value range to the observed [min, max].

    Overlapping ranges score by the fraction of the *query* range covered
    (a dataset spanning the whole request scores 1.0); disjoint ranges
    decay exponentially with the gap measured in query-range widths.
    Terms with no range score 1.0.  A half-open request treats the
    missing bound as the observed extremum.
    """
    return range_similarity_values(
        term, entry.count, entry.minimum, entry.maximum, config
    )


def name_similarity(
    term_name: str,
    entry_name: str,
    expansion: set[str],
    config: ScoringConfig,
) -> float:
    """1.0 for an exact or hierarchy-expanded match; partial credit for a
    close string; 0.0 otherwise."""
    if entry_name == term_name or entry_name in expansion:
        return 1.0
    sim = levenshtein_similarity(
        normalize_name(term_name), normalize_name(entry_name)
    )
    if sim >= config.name_partial_threshold:
        return sim
    return 0.0


def variable_term_similarity(
    term: VariableTerm,
    feature: DatasetFeature,
    hierarchy: ConceptHierarchy | None,
    config: ScoringConfig,
) -> float:
    """Best (name-sim x range-sim) over the dataset's searchable variables."""
    expansion = hierarchy.expand(term.name) if hierarchy is not None else {
        term.name
    }
    best = 0.0
    for entry in feature.searchable_variables():
        n_sim = name_similarity(term.name, entry.name, expansion, config)
        if n_sim == 0.0:
            continue
        sim = n_sim * range_similarity(term, entry, config)
        best = max(best, sim)
        if best >= 1.0:
            break
    return best


class QueryScorer:
    """Per-query scoring context for scoring many features.

    Hoists the work that :func:`score_feature` would redo per feature —
    hierarchy expansion and name normalization of each variable term —
    and memoizes the (term, entry-name) string-similarity pairs, which
    archives repeat across thousands of datasets.  All paths produce
    bit-identical scores to :func:`score_feature` (which delegates
    here), so engines may mix bounded and unbounded scoring freely.
    """

    __slots__ = (
        "query", "config", "_expansions", "_name_sims",
        "_use_location", "_use_time", "_use_variables",
        "_variables_weight", "_total_weight",
    )

    def __init__(
        self,
        query: Query,
        hierarchy: ConceptHierarchy | None = None,
        config: ScoringConfig | None = None,
    ) -> None:
        self.query = query
        self.config = config = config or ScoringConfig()
        self._use_location = query.has_spatial and config.use_location
        self._use_time = query.has_temporal and config.use_time
        self._use_variables = bool(query.variables) and config.use_variables
        self._expansions = [
            hierarchy.expand(term.name) if hierarchy is not None
            else {term.name}
            for term in query.variables
        ]
        self._name_sims: dict[tuple[int, str], float] = {}
        # Accumulate the weights in the exact order score() adds terms so
        # the precomputed divisor is bit-identical to a running total.
        weight = 0.0
        variables_weight = 0.0
        if self._use_location:
            weight += config.location_weight
        if self._use_time:
            weight += config.time_weight
        if self._use_variables:
            for term in query.variables:
                w = config.variable_weight * term.weight
                weight += w
                variables_weight += w
        self._variables_weight = variables_weight
        self._total_weight = weight

    def _name_similarity(self, term_index: int, entry_name: str) -> float:
        key = (term_index, entry_name)
        sim = self._name_sims.get(key)
        if sim is None:
            term = self.query.variables[term_index]
            sim = name_similarity(
                term.name, entry_name, self._expansions[term_index],
                self.config,
            )
            self._name_sims[key] = sim
        return sim

    def _variable_term_similarity(
        self, term_index: int, feature: DatasetFeature
    ) -> float:
        term = self.query.variables[term_index]
        best = 0.0
        for entry in feature.searchable_variables():
            n_sim = self._name_similarity(term_index, entry.name)
            if n_sim == 0.0:
                continue
            sim = n_sim * range_similarity(term, entry, self.config)
            best = max(best, sim)
            if best >= 1.0:
                break
        return best

    def score(self, feature: DatasetFeature) -> ScoreBreakdown:
        """Score one feature (same contract as :func:`score_feature`)."""
        breakdown, __ = self.score_bounded(feature, None)
        return breakdown

    def score_bounded(
        self,
        feature: DatasetFeature,
        floor: tuple[float, str] | None,
    ) -> tuple[ScoreBreakdown | None, bool]:
        """Score with an optional top-k floor of ``(score, dataset_id)``.

        The cheap terms (location, time) are computed first; when even a
        perfect similarity on every variable term could not beat the
        floor under the ``(-score, dataset_id)`` result ordering, the
        expensive variable-name scoring is skipped and ``None`` is
        returned instead of a breakdown.  The second element reports
        whether the feature is *known* to score above zero (exact for a
        full breakdown; for a skipped feature it is True when the cheap
        partial alone is already positive).
        """
        config = self.config
        query = self.query
        weighted_sum = 0.0
        loc_sim: float | None = None
        time_sim: float | None = None
        var_sims: list[tuple[str, float]] = []

        if self._use_location:
            loc_sim = location_similarity(query, feature, config)
            weighted_sum += config.location_weight * loc_sim
        if self._use_time:
            time_sim = time_similarity(query.interval, feature, config)
            weighted_sum += config.time_weight * time_sim
        if self._use_variables:
            if floor is not None and self._total_weight > 0:
                # Best possible total: every variable term scores 1.0.
                best_total = (
                    weighted_sum + self._variables_weight
                ) / self._total_weight
                floor_score, floor_id = floor
                if best_total < floor_score or (
                    best_total == floor_score
                    and feature.dataset_id > floor_id
                ):
                    return None, weighted_sum > 0.0
            for index, term in enumerate(query.variables):
                sim = self._variable_term_similarity(index, feature)
                var_sims.append((term.name, sim))
                w = config.variable_weight * term.weight
                weighted_sum += w * sim

        total = (
            weighted_sum / self._total_weight
            if self._total_weight > 0 else 1.0
        )
        breakdown = ScoreBreakdown(
            total=total,
            location=loc_sim,
            time=time_sim,
            variables=tuple(var_sims),
        )
        return breakdown, total > 0.0


def score_feature(
    query: Query,
    feature: DatasetFeature,
    hierarchy: ConceptHierarchy | None = None,
    config: ScoringConfig | None = None,
) -> ScoreBreakdown:
    """Score one dataset feature against a query.

    Returns the weighted-mean similarity over the terms present in the
    query, with the per-term breakdown.  An empty query scores 1.0.
    Scoring many features against one query?  Build a
    :class:`QueryScorer` once and reuse it — identical results, without
    re-deriving the per-term context per feature.
    """
    return QueryScorer(query, hierarchy=hierarchy, config=config).score(
        feature
    )

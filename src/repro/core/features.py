"""Feature extraction: scan a dataset once, summarize into the catalog.

"Individual datasets scanned once, summarized into a 'feature' per
dataset" — the feature is the dataset's spatial bounding box, temporal
interval and per-variable summary statistics.  Raw data never enters the
catalog.
"""

from __future__ import annotations

import math

from ..archive.dataset import Dataset
from ..catalog.records import DatasetFeature, VariableEntry
from ..geo import BoundingBox, GeoPoint, TimeInterval


class EmptyDatasetError(ValueError):
    """Raised when a dataset has no rows to summarize."""


def extract_feature(dataset: Dataset, content_hash: str = "") -> DatasetFeature:
    """Summarize ``dataset`` into a :class:`DatasetFeature`.

    Columns whose samples are all non-finite are summarized with zero
    count and NaN statistics rather than dropped — the curator should see
    that the variable exists even if the sensor never reported.

    Raises:
        EmptyDatasetError: when the dataset has zero rows.
    """
    table = dataset.table
    if table.row_count == 0:
        raise EmptyDatasetError(f"{dataset.path}: no rows")
    points = (
        GeoPoint(lat, lon) for lat, lon in zip(table.lats, table.lons)
    )
    bbox = BoundingBox.from_points(points)
    interval = TimeInterval(min(table.times), max(table.times))
    variables = []
    for column in table.columns:
        try:
            stats = column.stats()
            entry = VariableEntry.from_written(
                written_name=column.name,
                written_unit=column.unit,
                count=stats.count,
                minimum=stats.minimum,
                maximum=stats.maximum,
                mean=stats.mean,
                stddev=stats.stddev,
            )
        except ValueError:
            entry = VariableEntry.from_written(
                written_name=column.name,
                written_unit=column.unit,
                count=0,
                minimum=math.nan,
                maximum=math.nan,
                mean=math.nan,
                stddev=math.nan,
            )
        variables.append(entry)
    directory = (
        dataset.path.rsplit("/", 1)[0] if "/" in dataset.path else ""
    )
    return DatasetFeature(
        dataset_id=dataset.path,
        title=dataset.attributes.get("title", dataset.name),
        platform=dataset.platform.value,
        file_format=dataset.file_format.value,
        bbox=bbox,
        interval=interval,
        row_count=table.row_count,
        source_directory=directory,
        attributes=dict(dataset.attributes),
        variables=variables,
        content_hash=content_hash,
    )

"""Google Refine's clustering keys, reimplemented.

The poster's discovery step exports catalog variable names to Google
Refine and clusters them.  Refine's *key collision* methods bucket values
whose key functions collide; this module implements the two keyers Refine
ships (fingerprint and n-gram fingerprint) so ``repro.refine.clustering``
can reproduce that behaviour exactly.
"""

from __future__ import annotations

from .tokenize import ngrams, split_identifier, strip_accents


def fingerprint(value: str) -> str:
    """Refine's classic fingerprint key.

    Lowercase, strip accents and punctuation, split into tokens, drop
    duplicates, sort, rejoin with single spaces.  Values differing only in
    case, token order, duplication or punctuation collide::

        >>> fingerprint('Air_Temperature') == fingerprint('temperature air')
        True
    """
    tokens = split_identifier(strip_accents(value))
    return " ".join(sorted(set(tokens)))


def ngram_fingerprint(value: str, n: int = 2) -> str:
    """Refine's n-gram fingerprint key.

    Lowercase, strip everything but alphanumerics, take the sorted set of
    character n-grams, concatenate.  More aggressive than ``fingerprint``:
    it also collides small internal typos and missing separators
    (``airtemp`` vs ``air_temp``).

    Raises:
        ValueError: if ``n`` is not positive.
    """
    if n <= 0:
        raise ValueError(f"ngram size must be positive, got {n}")
    cleaned = "".join(
        ch for ch in strip_accents(value).lower() if ch.isalnum()
    )
    if len(cleaned) < n:
        return cleaned
    return "".join(sorted(set(ngrams(cleaned, n))))

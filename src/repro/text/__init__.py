"""Text substrate: tokenization, distances, Refine keys, phonetic codes."""

from .distance import (
    damerau_levenshtein,
    damerau_similarity,
    dice_coefficient,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    ngram_jaccard,
)
from .fingerprint import fingerprint, ngram_fingerprint
from .phonetic import metaphone, soundex
from .tokenize import (
    ngrams,
    normalize_name,
    split_identifier,
    strip_accents,
    words,
)

__all__ = [
    "damerau_levenshtein",
    "damerau_similarity",
    "dice_coefficient",
    "fingerprint",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "metaphone",
    "ngram_fingerprint",
    "ngram_jaccard",
    "ngrams",
    "normalize_name",
    "soundex",
    "split_identifier",
    "strip_accents",
    "words",
]

"""String distance and similarity measures.

These drive the "minor variations and misspellings" category of the
semantic-diversity table: nearest-neighbour clustering of variable names
(as in Google Refine's NN method) needs cheap, well-behaved distances.

All similarities returned here lie in [0, 1] with 1 meaning identical.
"""

from __future__ import annotations

from .tokenize import ngrams


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs).

    Iterative two-row dynamic program: O(len(a) * len(b)) time,
    O(min(len)) space.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein(a: str, b: str) -> int:
    """Edit distance counting adjacent transposition as one operation.

    ``air_temperatrue`` is one transposition from ``air_temperature`` —
    the canonical misspelling in the paper's Table resolves at distance 1
    here (2 under plain Levenshtein).  Restricted (optimal string
    alignment) variant.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Three rows are enough for the restricted variant.
    len_b = len(b)
    two_ago: list[int] = []
    previous = list(range(len_b + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            best = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and ca == b[j - 2]
                and a[i - 2] == cb
            ):
                best = min(best, two_ago[j - 2] + 1)
            current.append(best)
        two_ago = previous
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized Levenshtein distance; 1.0 for identical strings."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def damerau_similarity(a: str, b: str) -> float:
    """1 - normalized Damerau-Levenshtein distance."""
    if not a and not b:
        return 1.0
    return 1.0 - damerau_levenshtein(a, b) / max(len(a), len(b))


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ca:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    # Count transpositions among matched characters.
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by shared prefix (max 4).

    Raises:
        ValueError: if ``prefix_scale`` is outside [0, 0.25] (values above
            0.25 can push the score past 1).
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError("prefix_scale must lie in [0, 0.25]")
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def ngram_jaccard(a: str, b: str, n: int = 2) -> float:
    """Jaccard similarity of the strings' character n-gram sets."""
    grams_a = set(ngrams(a, n))
    grams_b = set(ngrams(b, n))
    if not grams_a and not grams_b:
        return 1.0 if a == b else 0.0
    if not grams_a or not grams_b:
        return 0.0
    inter = len(grams_a & grams_b)
    return inter / (len(grams_a) + len(grams_b) - inter)


def dice_coefficient(a: str, b: str, n: int = 2) -> float:
    """Sørensen-Dice coefficient over character n-gram sets."""
    grams_a = set(ngrams(a, n))
    grams_b = set(ngrams(b, n))
    if not grams_a and not grams_b:
        return 1.0 if a == b else 0.0
    if not grams_a or not grams_b:
        return 0.0
    return 2.0 * len(grams_a & grams_b) / (len(grams_a) + len(grams_b))

"""Phonetic keys: Soundex and a compact Metaphone.

Google Refine offers Metaphone as a key-collision method; variable-name
misspellings that survive fingerprinting (``temperatoor``) often collide
phonetically.  Both functions key the *alphabetic* part of a token; digits
are preserved verbatim at the end so ``fluores375`` and ``fluores400``
do not collide.
"""

from __future__ import annotations

_SOUNDEX_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2",
    "q": "2", "s": "2", "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}

_VOWELS = set("aeiou")


def _split_alpha_digits(value: str) -> tuple[str, str]:
    letters = "".join(ch for ch in value.lower() if ch.isalpha())
    digits = "".join(ch for ch in value if ch.isdigit())
    return letters, digits


def soundex(value: str) -> str:
    """American Soundex code, with trailing digits appended verbatim.

    Returns the empty string for input with no letters or digits.
    """
    letters, digits = _split_alpha_digits(value)
    if not letters:
        return digits
    first = letters[0]
    encoded = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        code = _SOUNDEX_CODES.get(ch, "")
        if code and code != previous:
            encoded.append(code)
        if ch not in "hw":  # h/w do not reset the previous code
            previous = code
        if len(encoded) == 4:
            break
    key = "".join(encoded).ljust(4, "0")
    return key + digits


def metaphone(value: str) -> str:
    """A compact Metaphone variant, with trailing digits appended verbatim.

    Implements the major Metaphone rules (silent letters, digraphs such as
    PH->F, TH->0, SH->X, CK->K, vowel dropping after the first letter).
    This is deliberately the *classic* Metaphone shape rather than Double
    Metaphone: it matches what Refine's keyer produces closely enough to
    collide the same misspelling families.
    """
    letters, digits = _split_alpha_digits(value)
    if not letters:
        return digits
    word = letters
    # Initial-letter exceptions.
    for prefix in ("ae", "gn", "kn", "pn", "wr"):
        if word.startswith(prefix):
            word = word[1:]
            break
    if word.startswith("x"):
        word = "s" + word[1:]
    if word.startswith("wh"):
        word = "w" + word[2:]

    out: list[str] = []
    i = 0
    n = len(word)
    while i < n:
        ch = word[i]
        nxt = word[i + 1] if i + 1 < n else ""
        prev = word[i - 1] if i > 0 else ""
        # Skip doubled letters (except c).
        if ch == prev and ch != "c":
            i += 1
            continue
        if ch in _VOWELS:
            if i == 0:
                out.append(ch.upper())
            i += 1
            continue
        if ch == "b":
            # Silent terminal b after m ("dumb").
            if not (i == n - 1 and prev == "m"):
                out.append("B")
        elif ch == "c":
            if nxt == "h":
                out.append("X")
                i += 1
            elif nxt in "iey":
                out.append("S")
            else:
                out.append("K")
        elif ch == "d":
            if nxt == "g" and i + 2 < n and word[i + 2] in "iey":
                out.append("J")
                i += 2
            else:
                out.append("T")
        elif ch == "g":
            if nxt == "h":
                # gh silent unless terminal or before a vowel.
                if i + 2 >= n or word[i + 2] in _VOWELS:
                    out.append("K")
                i += 1
            elif nxt == "n":
                pass  # silent g in "gn"
            elif nxt in "iey":
                out.append("J")
            else:
                out.append("K")
        elif ch == "h":
            if prev in _VOWELS and nxt not in _VOWELS:
                pass  # silent h
            else:
                out.append("H")
        elif ch == "k":
            if prev != "c":
                out.append("K")
        elif ch == "p":
            if nxt == "h":
                out.append("F")
                i += 1
            else:
                out.append("P")
        elif ch == "q":
            out.append("K")
        elif ch == "s":
            if nxt == "h":
                out.append("X")
                i += 1
            elif nxt == "i" and i + 2 < n and word[i + 2] in "oa":
                out.append("X")
            else:
                out.append("S")
        elif ch == "t":
            if nxt == "h":
                out.append("0")
                i += 1
            elif nxt == "i" and i + 2 < n and word[i + 2] in "oa":
                out.append("X")
            else:
                out.append("T")
        elif ch == "v":
            out.append("F")
        elif ch == "w":
            if nxt in _VOWELS:
                out.append("W")
        elif ch == "x":
            out.append("KS")
        elif ch == "y":
            if nxt in _VOWELS:
                out.append("Y")
        elif ch == "z":
            out.append("S")
        else:
            out.append(ch.upper())
        i += 1
    return "".join(out) + digits

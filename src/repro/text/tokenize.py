"""Tokenization of variable names and free text.

Scientific variable names arrive in every convention at once —
``air_temperature``, ``airTemp``, ``AIR-TEMP``, ``fluores375`` — and the
mess-taming machinery (fingerprinting, clustering, abbreviation expansion)
needs a single canonical token stream for each.
"""

from __future__ import annotations

import re
import unicodedata

_PUNCT_RE = re.compile(r"[\s_\-./:,;|()\[\]{}]+")
_CAMEL_RE = re.compile(
    r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])"
)
_ALNUM_SPLIT_RE = re.compile(r"(?<=[a-zA-Z])(?=\d)|(?<=\d)(?=[a-zA-Z])")
_NON_WORD_RE = re.compile(r"[^0-9a-z ]+")


def strip_accents(text: str) -> str:
    """Remove diacritics: ``'Température' -> 'Temperature'``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def split_identifier(name: str) -> list[str]:
    """Split a variable identifier into lowercase word tokens.

    Handles snake_case, kebab-case, camelCase, dotted paths and
    letter/digit boundaries::

        >>> split_identifier('airTemp_2m')
        ['air', 'temp', '2', 'm']
        >>> split_identifier('fluores375')
        ['fluores', '375']
    """
    if not name:
        return []
    # Insert spaces at camelCase boundaries first, then at punctuation.
    spaced = _CAMEL_RE.sub(" ", name)
    spaced = _PUNCT_RE.sub(" ", spaced)
    spaced = _ALNUM_SPLIT_RE.sub(" ", spaced)
    return [tok.lower() for tok in spaced.split() if tok]


def normalize_name(name: str) -> str:
    """Canonical single-string form of an identifier: tokens joined by '_'.

    ``normalize_name('Air Temperature') == normalize_name('airTemperature')``.
    """
    return "_".join(split_identifier(strip_accents(name)))


def words(text: str) -> list[str]:
    """Lowercased alphanumeric word tokens of free text."""
    lowered = strip_accents(text).lower()
    cleaned = _NON_WORD_RE.sub(" ", lowered)
    return cleaned.split()


def ngrams(text: str, n: int) -> list[str]:
    """Character n-grams of ``text`` (empty list when shorter than n).

    Raises:
        ValueError: if ``n`` is not positive.
    """
    if n <= 0:
        raise ValueError(f"ngram size must be positive, got {n}")
    if len(text) < n:
        return []
    return [text[i : i + n] for i in range(len(text) - n + 1)]

"""Catalog store interface and the in-memory implementation.

The wrangling process maintains a *working catalog* and publishes into a
*metadata catalog*; both are instances of :class:`CatalogStore`.  The
interface is deliberately small — upsert/get/iterate plus the bulk
operations transformations need (rename variables, mark exclusions).

Concurrency model: stores are written by one wrangle at a time but may
be *read* by many search threads.  Readers take an immutable
:class:`CatalogSnapshot` (:meth:`CatalogStore.snapshot`) — a frozen,
version-stamped copy of the catalog at one instant — and run every
query against it, so readers never block writers and never observe a
half-applied batch.  Writers keep batches atomic: :meth:`apply_batch`
applies a publish's upserts *and* removals under a single version bump
(one transaction in SQLite), which is what makes "one snapshot = one
catalog version" hold.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import Counter
from typing import Iterable, Iterator

from .records import DatasetFeature, VariableEntry


class DatasetNotFoundError(KeyError):
    """Raised when a dataset id is not in the catalog."""


class SnapshotMutationError(TypeError):
    """Raised when a mutating operation is attempted on a snapshot."""


class SnapshotContentionError(RuntimeError):
    """Raised when a consistent snapshot could not be read.

    Only the *generic* :meth:`CatalogStore.snapshot` fallback (optimistic
    version-check retry) can raise this; the bundled stores read under a
    lock or transaction and always succeed in one pass.
    """


class CatalogStore(ABC):
    """Abstract catalog of dataset features."""

    #: Backing field of :attr:`version` (instance attribute once bumped).
    _version: int = 0

    # -- versioning ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter.

        Every mutating operation — :meth:`upsert`, :meth:`remove`,
        :meth:`clear` and the bulk variable operations when they change
        at least one entry — bumps this counter, so index and cache
        layers can detect staleness in O(1).  Comparing catalog *sizes*
        is not sufficient: a same-size replacement (remove + upsert, or
        an in-place upsert of an existing id) changes content without
        changing the length.
        """
        return self._version

    def _bump_version(self) -> None:
        """Record one mutation (subclasses call this from every mutator)."""
        self._version += 1

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, attempts: int = 16) -> "CatalogSnapshot":
        """An immutable, version-stamped copy of the catalog right now.

        The snapshot is fully materialized: once taken it never touches
        this store again, so query threads holding one cannot block (or
        be corrupted by) concurrent writers.  Its :attr:`version` equals
        this store's version at the instant of the copy — version-keyed
        caches and index stamps computed against the snapshot therefore
        agree exactly with ones computed against the live store at the
        same version.

        This generic implementation is optimistic: read the version,
        copy the features, and retry if the version moved mid-copy.
        The bundled stores override it with a single locked (memory) or
        transactional (SQLite) pass.

        Raises:
            SnapshotContentionError: if ``attempts`` optimistic passes
                all raced a writer (generic fallback only).
        """
        for __ in range(attempts):
            before = self.version
            try:
                features = {f.dataset_id: f for f in self.features()}
            except (KeyError, RuntimeError):
                continue  # torn read under concurrent mutation; retry
            if self.version == before:
                return CatalogSnapshot(features, version=before)
        raise SnapshotContentionError(
            f"no consistent read in {attempts} attempts "
            "(writer mutating continuously?)"
        )

    def snapshot_cow(
        self,
        previous: "CatalogSnapshot",
        upserted: Iterable[str] = (),
        removed: Iterable[str] = (),
        expect_version: int | None = None,
    ) -> "CatalogSnapshot | None":
        """A copy-on-write snapshot: ``previous`` plus a known delta.

        Instead of copying all N features, fetch only the ``upserted``
        ids from the store and build the new snapshot by structurally
        sharing every unchanged feature object with ``previous`` — the
        publish path of the serving layer, O(changed) per refresh.

        Sound only when the caller *proves* the delta is the sole
        change since ``previous`` was taken (see
        ``PublishDelta.spans``); ``expect_version`` re-checks the store
        version at read time so a racing writer cannot slip a mutation
        under the shared copy.  Returns ``None`` when the check fails —
        callers fall back to :meth:`snapshot`.  Upserted ids no longer
        present in the store are treated as removed.

        This generic implementation is optimistic like the generic
        :meth:`snapshot`; the bundled stores override it with one
        locked pass.
        """
        before = self.version
        if expect_version is not None and before != expect_version:
            return None
        if before == previous.version:
            return previous
        upserts: dict[str, DatasetFeature] = {}
        gone = list(removed)
        for dataset_id in upserted:
            try:
                upserts[dataset_id] = self.get(dataset_id)
            except DatasetNotFoundError:
                gone.append(dataset_id)
        if self.version != before:
            return None  # raced a writer mid-read
        return previous.evolve(upserts, gone, version=before)

    # -- dataset-level -------------------------------------------------------

    @abstractmethod
    def upsert(self, feature: DatasetFeature) -> None:
        """Insert or replace the feature with ``feature.dataset_id``."""

    @abstractmethod
    def get(self, dataset_id: str) -> DatasetFeature:
        """Return a copy of the feature.

        Raises:
            DatasetNotFoundError: when absent.
        """

    @abstractmethod
    def remove(self, dataset_id: str) -> None:
        """Remove a dataset.

        Raises:
            DatasetNotFoundError: when absent.
        """

    @abstractmethod
    def dataset_ids(self) -> list[str]:
        """Sorted ids of all datasets."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of datasets."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all content."""

    # -- batch operations ----------------------------------------------------
    #
    # The ingest fast path publishes whole batches at a time.  Concrete
    # stores override these with implementations that bump the version
    # counter ONCE per non-empty batch (and, for SQLite, run in a single
    # transaction); the defaults here are correct but pay the per-item
    # cost, so they exist only for third-party stores that have not
    # caught up yet.

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        """Insert or replace a batch of features; returns the count.

        Overrides bump :attr:`version` once per non-empty batch so a
        publish of N changed datasets invalidates version-keyed caches
        exactly once instead of N times.
        """
        count = 0
        for feature in features:
            self.upsert(feature)
            count += 1
        return count

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        """Remove a batch of datasets; returns how many were present.

        Unlike :meth:`remove`, ids that are absent are skipped silently —
        batch callers (scan, publish) have already decided what should
        vanish and only need the store to converge.
        """
        removed = 0
        for dataset_id in dataset_ids:
            try:
                self.remove(dataset_id)
            except DatasetNotFoundError:
                continue
            removed += 1
        return removed

    def apply_batch(
        self,
        upserts: Iterable[DatasetFeature] = (),
        removals: Iterable[str] = (),
    ) -> tuple[int, int]:
        """Apply upserts and removals as ONE logical batch.

        This is the publish primitive: a re-wrangle's changed and
        vanished datasets land together, so a concurrent
        :meth:`snapshot` sees either the whole publish or none of it.
        Concrete stores override this with a single-transaction,
        single-version-bump implementation; this default delegates to
        the two batch calls (two bumps — correct, but a reader could
        snapshot between them) for third-party stores that have not
        caught up yet.

        Returns ``(upserted, removed)`` counts; absent removal ids are
        skipped silently, as in :meth:`remove_many`.
        """
        return self.upsert_many(upserts), self.remove_many(removals)

    def replace_all(self, features: Iterable[DatasetFeature]) -> int:
        """Replace the entire content with ``features`` atomically.

        The full-copy analogue of :meth:`apply_batch`: concrete stores
        swap the content under one version bump so a concurrent
        snapshot never observes the emptied-but-not-yet-refilled state
        this default's clear-then-insert exposes.  Returns the new
        dataset count.
        """
        self.clear()
        return self.upsert_many(features)

    def features(self) -> Iterator[DatasetFeature]:
        """Yield copies of all features in ``dataset_ids()`` order.

        This is the bulk read primitive: backends that pay a per-dataset
        lookup cost (SQLite's ``get`` issues one query for the dataset
        row and one for its variables) override it with a grouped read,
        so full-catalog consumers (index builds, publishes, exports)
        avoid the 1+2N query pattern.
        """
        for dataset_id in self.dataset_ids():
            yield self.get(dataset_id)

    def __iter__(self) -> Iterator[DatasetFeature]:
        return self.features()

    def contains(self, dataset_id: str) -> bool:
        """True when ``dataset_id`` is cataloged."""
        return dataset_id in set(self.dataset_ids())

    # -- variable-level bulk operations --------------------------------------

    def variable_name_counts(self) -> Counter[str]:
        """Current variable name -> number of datasets using it."""
        counts: Counter[str] = Counter()
        for feature in self:
            counts.update(set(feature.variable_names()))
        return counts

    def iter_variables(self) -> Iterator[tuple[str, VariableEntry]]:
        """Yield ``(dataset_id, variable_entry)`` over the catalog."""
        for feature in self:
            for entry in feature.variables:
                yield feature.dataset_id, entry

    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        """Rewrite current variable names via ``mapping``; returns the
        number of entries changed.  ``resolution`` labels the provenance.
        """
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                new_name = mapping.get(entry.name)
                if new_name is not None and new_name != entry.name:
                    entry.name = new_name
                    if resolution:
                        entry.resolution = resolution
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def rename_units(self, mapping: dict[str, str]) -> int:
        """Rewrite current unit strings via ``mapping``; returns changes."""
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                new_unit = mapping.get(entry.unit)
                if new_unit is not None and new_unit != entry.unit:
                    entry.unit = new_unit
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        """Mark variables with current names in ``names``; returns count."""
        target = set(names)
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                if entry.name in target and entry.excluded != excluded:
                    entry.excluded = excluded
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        """Mark variables as needing curator clarification."""
        target = set(names)
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                if entry.name in target and entry.ambiguous != flag:
                    entry.ambiguous = flag
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def copy_into(self, other: "CatalogStore") -> int:
        """Replace ``other``'s content with a copy of this catalog.

        This is the Publish component's primitive.  Returns dataset count.
        The copy goes through :meth:`features`/:meth:`replace_all`, so a
        full-copy publish into SQLite is one bulk read and one
        transaction (one version bump — a concurrent snapshot sees the
        old catalog or the new one, never the emptied middle state).
        """
        return other.replace_all(self.features())


class CatalogSnapshot(CatalogStore):
    """A frozen, version-stamped view of a catalog at one instant.

    Snapshots are what concurrent readers search over: the content and
    :attr:`version` never change after construction, every mutating
    operation raises :class:`SnapshotMutationError`, and nothing here
    refers back to the source store — a reader holding a snapshot can
    never block, slow, or be torn by a writer.

    Because the version equals the source store's version at copy time,
    everything keyed on catalog versions attaches for free: query-cache
    entries computed against a snapshot hit for any other snapshot (or
    the live store) at the same version, and
    :class:`~repro.catalog.index.CatalogIndexes` built over a snapshot
    carry a truthful ``catalog_version`` stamp.

    :meth:`get` returns copies, like every other store — the snapshot's
    own features stay pristine even if a caller mutates a result.
    """

    _MUTATION_MESSAGE = (
        "catalog snapshots are immutable — mutate the source store and "
        "take a fresh snapshot"
    )

    def __init__(
        self, features: dict[str, DatasetFeature], version: int
    ) -> None:
        self._features = dict(features)
        self._ids = sorted(self._features)
        self._frozen_version = version
        self._columnar = None
        self._freeze_lock = threading.Lock()
        # Set by evolve(): (base snapshot, upserted ids, removed ids),
        # consumed by the first columnar() call for an incremental
        # refreeze, then dropped so snapshot chains are not retained.
        self._cow_base: tuple | None = None

    @property
    def version(self) -> int:
        """The source store's version at the instant of the copy."""
        return self._frozen_version

    def _bump_version(self) -> None:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    # -- reads ---------------------------------------------------------------

    def get(self, dataset_id: str) -> DatasetFeature:
        try:
            return self._features[dataset_id].copy()
        except KeyError:
            raise DatasetNotFoundError(dataset_id)

    def dataset_ids(self) -> list[str]:
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._features)

    def features(self) -> Iterator[DatasetFeature]:
        for dataset_id in self._ids:
            yield self._features[dataset_id].copy()

    def contains(self, dataset_id: str) -> bool:
        return dataset_id in self._features

    def snapshot(self, attempts: int = 16) -> "CatalogSnapshot":
        """A snapshot of a snapshot is itself (already immutable)."""
        return self

    def evolve(
        self,
        upserts: dict[str, DatasetFeature],
        removed: Iterable[str],
        version: int,
    ) -> "CatalogSnapshot":
        """A new snapshot sharing this one's unchanged feature objects.

        The copy-on-write construction behind
        :meth:`CatalogStore.snapshot_cow`: the feature *dict* is copied
        (O(N) pointers), the feature *objects* — the expensive part —
        are shared for every id the delta did not touch.  Sharing is
        sound because snapshots are immutable end to end: every mutator
        raises :class:`SnapshotMutationError`, every read
        (:meth:`get`/:meth:`features`) returns copies, and the stores
        that build snapshots store copies themselves — no path exists
        by which either snapshot's objects can be written through.

        The caller is responsible for the delta actually spanning
        ``self.version -> version`` (the store's ``snapshot_cow``
        verifies that under its lock).
        """
        features = dict(self._features)
        for dataset_id in removed:
            features.pop(dataset_id, None)
        features.update(upserts)
        out = CatalogSnapshot(features, version=version)
        out._cow_base = (self, tuple(upserts), tuple(removed))
        from ..obs import get_telemetry

        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("snapshot.cow")
            telemetry.count(
                "snapshot.cow_shared", len(features) - len(upserts)
            )
        return out

    def columnar(self):
        """The columnar view of this snapshot, frozen once and cached.

        Because the snapshot never changes, the columns are frozen at
        most once and shared by every engine (and every serve request)
        holding this snapshot — the expensive part of the columnar fast
        path is paid per snapshot refresh, not per query.  Reads the
        internal features directly (no defensive copies): the freeze
        only extracts numeric facets and interned strings.

        The first freeze runs under a per-snapshot lock, so concurrent
        first readers share ONE freeze instead of each paying the full
        O(N) pass (the losers count ``columnar.freeze_races_avoided``
        and reuse the winner's view).

        Snapshots built copy-on-write (:meth:`evolve`) refreeze
        *incrementally* when their base snapshot already froze: only
        the delta's rows are rebuilt, everything else is spliced from
        the base view (``ColumnarSnapshot.freeze_from``).
        """
        view = self._columnar
        if view is not None:
            return view
        from ..core.columnar import ColumnarSnapshot
        from ..obs import get_telemetry

        with self._freeze_lock:
            view = self._columnar
            if view is not None:
                # Another reader froze while we waited for the lock —
                # exactly the double freeze the lock exists to avoid.
                telemetry = get_telemetry()
                if telemetry.enabled:
                    telemetry.count("columnar.freeze_races_avoided")
                return view
            base = self._cow_base
            if base is not None:
                previous, upserted_ids, removed_ids = base
                base_view = previous._columnar
                if base_view is not None:
                    upserted = [
                        self._features[dataset_id]
                        for dataset_id in upserted_ids
                        if dataset_id in self._features
                    ]
                    try:
                        view = ColumnarSnapshot.freeze_from(
                            base_view,
                            upserted,
                            removed_ids,
                            version=self._frozen_version,
                        )
                    except KeyError:
                        view = None  # inconsistent base; cold freeze
                    if view is not None and view.ids != self._ids:
                        telemetry = get_telemetry()
                        if telemetry.enabled:
                            telemetry.count("columnar.refreeze_fallbacks")
                        view = None
            if view is None:
                view = ColumnarSnapshot.freeze(
                    self._features.values(), version=self._frozen_version
                )
            self._columnar = view
            self._cow_base = None  # never retain a snapshot chain
        return view

    # -- every mutation refused ---------------------------------------------

    def upsert(self, feature: DatasetFeature) -> None:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def remove(self, dataset_id: str) -> None:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def clear(self) -> None:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def apply_batch(
        self,
        upserts: Iterable[DatasetFeature] = (),
        removals: Iterable[str] = (),
    ) -> tuple[int, int]:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def replace_all(self, features: Iterable[DatasetFeature]) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def rename_units(self, mapping: dict[str, str]) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        raise SnapshotMutationError(self._MUTATION_MESSAGE)


class MemoryCatalog(CatalogStore):
    """Dict-backed store: the default working catalog.

    Mutations and snapshots synchronize on one lock, so a
    :meth:`snapshot` taken while another thread runs a bulk operation
    (a publish batch, an in-place rename sweep) sees the catalog
    strictly before or strictly after it — never a torn middle.  Point
    reads (:meth:`get`, iteration) stay lock-free for the single-writer
    wrangling hot path; concurrent *readers* should search snapshots,
    which is what the serving layer does.
    """

    def __init__(self) -> None:
        self._features: dict[str, DatasetFeature] = {}
        self._write_lock = threading.RLock()

    def snapshot(self, attempts: int = 16) -> CatalogSnapshot:
        with self._write_lock:
            return CatalogSnapshot(
                {
                    dataset_id: feature.copy()
                    for dataset_id, feature in self._features.items()
                },
                version=self._version,
            )

    def snapshot_cow(
        self,
        previous: CatalogSnapshot,
        upserted: Iterable[str] = (),
        removed: Iterable[str] = (),
        expect_version: int | None = None,
    ) -> CatalogSnapshot | None:
        # One locked pass: the version check and the delta reads are a
        # single atomic unit, so the expect_version guarantee cannot be
        # invalidated between check and copy.
        with self._write_lock:
            version = self._version
            if expect_version is not None and version != expect_version:
                return None
            if version == previous.version:
                return previous
            upserts: dict[str, DatasetFeature] = {}
            gone = list(removed)
            for dataset_id in upserted:
                feature = self._features.get(dataset_id)
                if feature is None:
                    gone.append(dataset_id)
                else:
                    upserts[dataset_id] = feature.copy()
            return previous.evolve(upserts, gone, version=version)

    def upsert(self, feature: DatasetFeature) -> None:
        with self._write_lock:
            self._features[feature.dataset_id] = feature.copy()
            self._bump_version()

    def get(self, dataset_id: str) -> DatasetFeature:
        try:
            return self._features[dataset_id].copy()
        except KeyError:
            raise DatasetNotFoundError(dataset_id)

    def remove(self, dataset_id: str) -> None:
        with self._write_lock:
            if dataset_id not in self._features:
                raise DatasetNotFoundError(dataset_id)
            del self._features[dataset_id]
            self._bump_version()

    def dataset_ids(self) -> list[str]:
        return sorted(self._features)

    def __len__(self) -> int:
        return len(self._features)

    def clear(self) -> None:
        with self._write_lock:
            self._features.clear()
            self._bump_version()

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        with self._write_lock:
            count = 0
            for feature in features:
                self._features[feature.dataset_id] = feature.copy()
                count += 1
            if count:
                self._bump_version()
            return count

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        with self._write_lock:
            removed = 0
            for dataset_id in dataset_ids:
                if self._features.pop(dataset_id, None) is not None:
                    removed += 1
            if removed:
                self._bump_version()
            return removed

    def apply_batch(
        self,
        upserts: Iterable[DatasetFeature] = (),
        removals: Iterable[str] = (),
    ) -> tuple[int, int]:
        with self._write_lock:
            upserted = 0
            for feature in upserts:
                self._features[feature.dataset_id] = feature.copy()
                upserted += 1
            removed = 0
            for dataset_id in removals:
                if self._features.pop(dataset_id, None) is not None:
                    removed += 1
            if upserted or removed:
                self._bump_version()
            return upserted, removed

    def replace_all(self, features: Iterable[DatasetFeature]) -> int:
        # Materialize outside the lock (the source may be a slow store),
        # swap inside it: one bump, no observable emptied state.
        fresh = {
            feature.dataset_id: feature.copy() for feature in features
        }
        with self._write_lock:
            self._features = fresh
            self._bump_version()
            return len(fresh)

    def features(self) -> Iterator[DatasetFeature]:
        for dataset_id in sorted(self._features):
            yield self._features[dataset_id].copy()

    # Bulk operations work on internal objects directly; re-upserting a
    # copy per dataset (the ABC default) would double the work.
    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        with self._write_lock:
            changed = 0
            for feature in self._features.values():
                for entry in feature.variables:
                    new_name = mapping.get(entry.name)
                    if new_name is not None and new_name != entry.name:
                        entry.name = new_name
                        if resolution:
                            entry.resolution = resolution
                        changed += 1
            if changed:
                self._bump_version()
            return changed

    def rename_units(self, mapping: dict[str, str]) -> int:
        with self._write_lock:
            changed = 0
            for feature in self._features.values():
                for entry in feature.variables:
                    new_unit = mapping.get(entry.unit)
                    if new_unit is not None and new_unit != entry.unit:
                        entry.unit = new_unit
                        changed += 1
            if changed:
                self._bump_version()
            return changed

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        with self._write_lock:
            target = set(names)
            changed = 0
            for feature in self._features.values():
                for entry in feature.variables:
                    if entry.name in target and entry.excluded != excluded:
                        entry.excluded = excluded
                        changed += 1
            if changed:
                self._bump_version()
            return changed

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        with self._write_lock:
            target = set(names)
            changed = 0
            for feature in self._features.values():
                for entry in feature.variables:
                    if entry.name in target and entry.ambiguous != flag:
                        entry.ambiguous = flag
                        changed += 1
            if changed:
                self._bump_version()
            return changed

"""Catalog store interface and the in-memory implementation.

The wrangling process maintains a *working catalog* and publishes into a
*metadata catalog*; both are instances of :class:`CatalogStore`.  The
interface is deliberately small — upsert/get/iterate plus the bulk
operations transformations need (rename variables, mark exclusions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Iterable, Iterator

from .records import DatasetFeature, VariableEntry


class DatasetNotFoundError(KeyError):
    """Raised when a dataset id is not in the catalog."""


class CatalogStore(ABC):
    """Abstract catalog of dataset features."""

    #: Backing field of :attr:`version` (instance attribute once bumped).
    _version: int = 0

    # -- versioning ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter.

        Every mutating operation — :meth:`upsert`, :meth:`remove`,
        :meth:`clear` and the bulk variable operations when they change
        at least one entry — bumps this counter, so index and cache
        layers can detect staleness in O(1).  Comparing catalog *sizes*
        is not sufficient: a same-size replacement (remove + upsert, or
        an in-place upsert of an existing id) changes content without
        changing the length.
        """
        return self._version

    def _bump_version(self) -> None:
        """Record one mutation (subclasses call this from every mutator)."""
        self._version += 1

    # -- dataset-level -------------------------------------------------------

    @abstractmethod
    def upsert(self, feature: DatasetFeature) -> None:
        """Insert or replace the feature with ``feature.dataset_id``."""

    @abstractmethod
    def get(self, dataset_id: str) -> DatasetFeature:
        """Return a copy of the feature.

        Raises:
            DatasetNotFoundError: when absent.
        """

    @abstractmethod
    def remove(self, dataset_id: str) -> None:
        """Remove a dataset.

        Raises:
            DatasetNotFoundError: when absent.
        """

    @abstractmethod
    def dataset_ids(self) -> list[str]:
        """Sorted ids of all datasets."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of datasets."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all content."""

    # -- batch operations ----------------------------------------------------
    #
    # The ingest fast path publishes whole batches at a time.  Concrete
    # stores override these with implementations that bump the version
    # counter ONCE per non-empty batch (and, for SQLite, run in a single
    # transaction); the defaults here are correct but pay the per-item
    # cost, so they exist only for third-party stores that have not
    # caught up yet.

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        """Insert or replace a batch of features; returns the count.

        Overrides bump :attr:`version` once per non-empty batch so a
        publish of N changed datasets invalidates version-keyed caches
        exactly once instead of N times.
        """
        count = 0
        for feature in features:
            self.upsert(feature)
            count += 1
        return count

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        """Remove a batch of datasets; returns how many were present.

        Unlike :meth:`remove`, ids that are absent are skipped silently —
        batch callers (scan, publish) have already decided what should
        vanish and only need the store to converge.
        """
        removed = 0
        for dataset_id in dataset_ids:
            try:
                self.remove(dataset_id)
            except DatasetNotFoundError:
                continue
            removed += 1
        return removed

    def features(self) -> Iterator[DatasetFeature]:
        """Yield copies of all features in ``dataset_ids()`` order.

        This is the bulk read primitive: backends that pay a per-dataset
        lookup cost (SQLite's ``get`` issues one query for the dataset
        row and one for its variables) override it with a grouped read,
        so full-catalog consumers (index builds, publishes, exports)
        avoid the 1+2N query pattern.
        """
        for dataset_id in self.dataset_ids():
            yield self.get(dataset_id)

    def __iter__(self) -> Iterator[DatasetFeature]:
        return self.features()

    def contains(self, dataset_id: str) -> bool:
        """True when ``dataset_id`` is cataloged."""
        return dataset_id in set(self.dataset_ids())

    # -- variable-level bulk operations --------------------------------------

    def variable_name_counts(self) -> Counter[str]:
        """Current variable name -> number of datasets using it."""
        counts: Counter[str] = Counter()
        for feature in self:
            counts.update(set(feature.variable_names()))
        return counts

    def iter_variables(self) -> Iterator[tuple[str, VariableEntry]]:
        """Yield ``(dataset_id, variable_entry)`` over the catalog."""
        for feature in self:
            for entry in feature.variables:
                yield feature.dataset_id, entry

    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        """Rewrite current variable names via ``mapping``; returns the
        number of entries changed.  ``resolution`` labels the provenance.
        """
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                new_name = mapping.get(entry.name)
                if new_name is not None and new_name != entry.name:
                    entry.name = new_name
                    if resolution:
                        entry.resolution = resolution
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def rename_units(self, mapping: dict[str, str]) -> int:
        """Rewrite current unit strings via ``mapping``; returns changes."""
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                new_unit = mapping.get(entry.unit)
                if new_unit is not None and new_unit != entry.unit:
                    entry.unit = new_unit
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        """Mark variables with current names in ``names``; returns count."""
        target = set(names)
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                if entry.name in target and entry.excluded != excluded:
                    entry.excluded = excluded
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        """Mark variables as needing curator clarification."""
        target = set(names)
        changed = 0
        for feature in self:
            touched = False
            for entry in feature.variables:
                if entry.name in target and entry.ambiguous != flag:
                    entry.ambiguous = flag
                    changed += 1
                    touched = True
            if touched:
                self.upsert(feature)
        return changed

    def copy_into(self, other: "CatalogStore") -> int:
        """Replace ``other``'s content with a copy of this catalog.

        This is the Publish component's primitive.  Returns dataset count.
        The copy goes through :meth:`features`/:meth:`upsert_many`, so a
        full-copy publish into SQLite is one bulk read and one
        transaction instead of 2N queries and N commits.
        """
        other.clear()
        return other.upsert_many(self.features())


class MemoryCatalog(CatalogStore):
    """Dict-backed store: the default working catalog."""

    def __init__(self) -> None:
        self._features: dict[str, DatasetFeature] = {}

    def upsert(self, feature: DatasetFeature) -> None:
        self._features[feature.dataset_id] = feature.copy()
        self._bump_version()

    def get(self, dataset_id: str) -> DatasetFeature:
        try:
            return self._features[dataset_id].copy()
        except KeyError:
            raise DatasetNotFoundError(dataset_id)

    def remove(self, dataset_id: str) -> None:
        if dataset_id not in self._features:
            raise DatasetNotFoundError(dataset_id)
        del self._features[dataset_id]
        self._bump_version()

    def dataset_ids(self) -> list[str]:
        return sorted(self._features)

    def __len__(self) -> int:
        return len(self._features)

    def clear(self) -> None:
        self._features.clear()
        self._bump_version()

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        count = 0
        for feature in features:
            self._features[feature.dataset_id] = feature.copy()
            count += 1
        if count:
            self._bump_version()
        return count

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        removed = 0
        for dataset_id in dataset_ids:
            if self._features.pop(dataset_id, None) is not None:
                removed += 1
        if removed:
            self._bump_version()
        return removed

    def features(self) -> Iterator[DatasetFeature]:
        for dataset_id in sorted(self._features):
            yield self._features[dataset_id].copy()

    # Bulk operations work on internal objects directly; re-upserting a
    # copy per dataset (the ABC default) would double the work.
    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        changed = 0
        for feature in self._features.values():
            for entry in feature.variables:
                new_name = mapping.get(entry.name)
                if new_name is not None and new_name != entry.name:
                    entry.name = new_name
                    if resolution:
                        entry.resolution = resolution
                    changed += 1
        if changed:
            self._bump_version()
        return changed

    def rename_units(self, mapping: dict[str, str]) -> int:
        changed = 0
        for feature in self._features.values():
            for entry in feature.variables:
                new_unit = mapping.get(entry.unit)
                if new_unit is not None and new_unit != entry.unit:
                    entry.unit = new_unit
                    changed += 1
        if changed:
            self._bump_version()
        return changed

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        target = set(names)
        changed = 0
        for feature in self._features.values():
            for entry in feature.variables:
                if entry.name in target and entry.excluded != excluded:
                    entry.excluded = excluded
                    changed += 1
        if changed:
            self._bump_version()
        return changed

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        target = set(names)
        changed = 0
        for feature in self._features.values():
            for entry in feature.variables:
                if entry.name in target and entry.ambiguous != flag:
                    entry.ambiguous = flag
                    changed += 1
        if changed:
            self._bump_version()
        return changed

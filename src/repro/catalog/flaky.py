"""Simulated SQLite busy/locked fault injection for catalog stores.

:class:`FlakyCatalogStore` wraps any :class:`~repro.catalog.store
.CatalogStore` and makes its *write* operations raise the real
:class:`sqlite3.OperationalError` ("database is locked") per a seeded
:class:`~repro.core.faults.FaultSchedule` — the exact exception a
contended file-backed SQLite catalog produces, so the pipeline's retry
and classification layers are exercised against the genuine article.

Faults fire *before* the delegate runs, modelling a connection that
could not even begin its transaction: an injected fault never leaves a
partial write behind, so a retried call is exactly idempotent.  Reads
are faulted only when ``fail_reads`` is set (op ``"read"``); writes use
op ``"store"`` keyed by method name.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Iterator

from ..core.faults import FaultSchedule
from .records import DatasetFeature
from .store import CatalogStore


class FlakyCatalogStore(CatalogStore):
    """A catalog store whose writes go busy per a fault schedule."""

    def __init__(
        self,
        inner: CatalogStore,
        schedule: FaultSchedule,
        fail_reads: bool = False,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.fail_reads = fail_reads

    def _maybe_fail(self, operation: str) -> None:
        if self.schedule.should_fail("store", operation):
            raise sqlite3.OperationalError(
                f"database is locked (injected during {operation})"
            )

    def _maybe_fail_read(self, operation: str) -> None:
        if self.fail_reads and self.schedule.should_fail("read", operation):
            raise sqlite3.OperationalError(
                f"database is locked (injected during {operation})"
            )

    # -- versioning ---------------------------------------------------------

    @property
    def version(self) -> int:
        return self.inner.version

    # -- faulted writes -----------------------------------------------------

    def upsert(self, feature: DatasetFeature) -> None:
        self._maybe_fail("upsert")
        self.inner.upsert(feature)

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        self._maybe_fail("upsert_many")
        return self.inner.upsert_many(features)

    def remove(self, dataset_id: str) -> None:
        self._maybe_fail("remove")
        self.inner.remove(dataset_id)

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        self._maybe_fail("remove_many")
        return self.inner.remove_many(dataset_ids)

    def apply_batch(
        self,
        upserts: Iterable[DatasetFeature] = (),
        removals: Iterable[str] = (),
    ) -> tuple[int, int]:
        # One injection point for the whole batch, mirroring the real
        # stores' single transaction: the fault fires before anything
        # lands, so a retried batch replays against unchanged state.
        self._maybe_fail("apply_batch")
        return self.inner.apply_batch(upserts, removals)

    def replace_all(self, features: Iterable[DatasetFeature]) -> int:
        self._maybe_fail("replace_all")
        return self.inner.replace_all(features)

    def clear(self) -> None:
        self._maybe_fail("clear")
        self.inner.clear()

    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        self._maybe_fail("rename_variables")
        return self.inner.rename_variables(mapping, resolution=resolution)

    def rename_units(self, mapping: dict[str, str]) -> int:
        self._maybe_fail("rename_units")
        return self.inner.rename_units(mapping)

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        self._maybe_fail("set_excluded")
        return self.inner.set_excluded(names, excluded=excluded)

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        self._maybe_fail("set_ambiguous")
        return self.inner.set_ambiguous(names, flag=flag)

    # -- (optionally faulted) reads ------------------------------------------

    def get(self, dataset_id: str) -> DatasetFeature:
        self._maybe_fail_read("get")
        return self.inner.get(dataset_id)

    def dataset_ids(self) -> list[str]:
        self._maybe_fail_read("dataset_ids")
        return self.inner.dataset_ids()

    def features(self) -> Iterator[DatasetFeature]:
        self._maybe_fail_read("features")
        return self.inner.features()

    def snapshot(self, attempts: int = 16):
        self._maybe_fail_read("snapshot")
        return self.inner.snapshot(attempts=attempts)

    def snapshot_cow(
        self,
        previous,
        upserted: Iterable[str] = (),
        removed: Iterable[str] = (),
        expect_version: int | None = None,
    ):
        self._maybe_fail_read("snapshot_cow")
        return self.inner.snapshot_cow(
            previous, upserted, removed, expect_version=expect_version
        )

    def __len__(self) -> int:
        return len(self.inner)

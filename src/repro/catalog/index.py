"""Candidate-selection indexes over catalog features.

Ranked search scores *every* candidate; with thousands of datasets a full
scan per query is wasteful when the query carries location or time terms.
These indexes prune the candidate set cheaply and conservatively (they
never drop a dataset that could score above zero on the indexed term
within the given radius/expansion).
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict
from typing import Iterable

from ..geo import BoundingBox, GeoPoint, TimeInterval
from .records import DatasetFeature


def spatial_query_margins(
    lat: float, radius_km: float
) -> tuple[float, float]:
    """Degree margins (lat, lon) covering ``radius_km`` around ``lat``.

    Conservative: longitude degrees shrink with latitude, so the lon
    margin is bounded with the extreme latitude reachable within the
    radius.  Shared by the in-memory grid index and the SQLite pushdown
    prefilter so both prune with *identical* (superset-safe) windows.
    A margin of ``(>=180, ...)`` or ``(..., >=360)`` means the window
    covers the globe — callers should return "everything".
    """
    if radius_km < 0:
        raise ValueError("radius_km must be non-negative")
    lat_margin = radius_km / 111.0  # km per degree latitude
    extreme_lat = min(89.0, abs(lat) + lat_margin)
    km_per_lon_degree = 111.320 * math.cos(math.radians(extreme_lat))
    lon_margin = (
        radius_km / km_per_lon_degree if km_per_lon_degree > 1e-9
        else 360.0
    )
    return lat_margin, lon_margin


class SpatialGridIndex:
    """A fixed-resolution lat/lon grid over dataset bounding boxes.

    Each dataset is registered in every grid cell its box touches; a
    query enumerates the cells within ``radius_km`` of the query point.
    Conservative: possibly returns extra candidates, never misses one
    whose box lies within the radius.
    """

    def __init__(self, cell_degrees: float = 0.5) -> None:
        if cell_degrees <= 0:
            raise ValueError("cell_degrees must be positive")
        self.cell_degrees = cell_degrees
        self._cells: dict[tuple[int, int], set[str]] = defaultdict(set)
        self._boxes: dict[str, BoundingBox] = {}

    def _cell_of(self, lat: float, lon: float) -> tuple[int, int]:
        return (
            int(math.floor(lat / self.cell_degrees)),
            int(math.floor(lon / self.cell_degrees)),
        )

    def insert(self, dataset_id: str, bbox: BoundingBox) -> None:
        """Register (or re-register) a dataset's box."""
        if dataset_id in self._boxes:
            self.remove(dataset_id)
        self._boxes[dataset_id] = bbox
        lo = self._cell_of(bbox.min_lat, bbox.min_lon)
        hi = self._cell_of(bbox.max_lat, bbox.max_lon)
        for ci in range(lo[0], hi[0] + 1):
            for cj in range(lo[1], hi[1] + 1):
                self._cells[(ci, cj)].add(dataset_id)

    def remove(self, dataset_id: str) -> None:
        """Drop a dataset from the index (no-op when absent)."""
        bbox = self._boxes.pop(dataset_id, None)
        if bbox is None:
            return
        lo = self._cell_of(bbox.min_lat, bbox.min_lon)
        hi = self._cell_of(bbox.max_lat, bbox.max_lon)
        for ci in range(lo[0], hi[0] + 1):
            for cj in range(lo[1], hi[1] + 1):
                cell = self._cells.get((ci, cj))
                if cell is not None:
                    cell.discard(dataset_id)
                    if not cell:
                        del self._cells[(ci, cj)]

    def __len__(self) -> int:
        return len(self._boxes)

    def candidates_near(
        self, point: GeoPoint, radius_km: float
    ) -> set[str]:
        """Dataset ids whose box may lie within ``radius_km`` of ``point``.

        The radius is converted to a degree margin using the worst-case
        (smallest) km-per-degree of longitude over the cells in play.
        """
        lat_margin, lon_margin = spatial_query_margins(
            point.lat, radius_km
        )
        # A margin beyond the globe means "everything"; clamping keeps
        # the cell scan bounded even for huge decay horizons.
        if lat_margin >= 180.0 or lon_margin >= 360.0:
            return set(self._boxes)
        lo = self._cell_of(
            max(-90.0, point.lat - lat_margin),
            max(-180.0, point.lon - lon_margin),
        )
        hi = self._cell_of(
            min(90.0, point.lat + lat_margin),
            min(180.0, point.lon + lon_margin),
        )
        cell_count = (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
        if cell_count > len(self._cells):
            # Cheaper to test every occupied cell than to enumerate the
            # query rectangle.
            out: set[str] = set()
            for (ci, cj), members in self._cells.items():
                if lo[0] <= ci <= hi[0] and lo[1] <= cj <= hi[1]:
                    out.update(members)
            return out
        out = set()
        for ci in range(lo[0], hi[0] + 1):
            for cj in range(lo[1], hi[1] + 1):
                out.update(self._cells.get((ci, cj), ()))
        return out

    def all_ids(self) -> set[str]:
        """Every registered dataset id."""
        return set(self._boxes)

    def copy(self) -> "SpatialGridIndex":
        """A structurally independent copy (shared immutable values).

        O(cells + datasets) dict/set duplication — far below a rebuild,
        which re-derives every box's cell range.  Mutating either copy
        never affects the other; the ``BoundingBox`` values themselves
        are shared (never mutated by the index).
        """
        out = SpatialGridIndex(cell_degrees=self.cell_degrees)
        out._cells = defaultdict(
            set,
            {cell: set(members) for cell, members in self._cells.items()},
        )
        out._boxes = dict(self._boxes)
        return out


class IntervalIndex:
    """A sorted-endpoint index over dataset time intervals.

    Supports "all intervals overlapping [a, b] expanded by ``margin``"
    via two bisections over sorted start/end lists plus one set
    subtraction — O(log n + answer).

    The endpoint lists are built lazily (one O(n log n) sort on the
    first query after a bulk load) and then maintained *incrementally*:
    a later insert or remove costs two bisections per list instead of a
    full re-sort, so catalog edits update the index in O(changed).
    """

    def __init__(self) -> None:
        self._intervals: dict[str, TimeInterval] = {}
        self._dirty = True
        self._starts: list[tuple[float, str]] = []
        self._ends: list[tuple[float, str]] = []

    def insert(self, dataset_id: str, interval: TimeInterval) -> None:
        """Register (or re-register) a dataset's time interval."""
        old = self._intervals.get(dataset_id)
        self._intervals[dataset_id] = interval
        if self._dirty:
            return
        if old is not None:
            self._discard_endpoints(dataset_id, old)
        bisect.insort(self._starts, (interval.start, dataset_id))
        bisect.insort(self._ends, (interval.end, dataset_id))

    def remove(self, dataset_id: str) -> None:
        """Drop a dataset (no-op when absent)."""
        old = self._intervals.pop(dataset_id, None)
        if old is not None and not self._dirty:
            self._discard_endpoints(dataset_id, old)

    def _discard_endpoints(
        self, dataset_id: str, interval: TimeInterval
    ) -> None:
        start_key = (interval.start, dataset_id)
        i = bisect.bisect_left(self._starts, start_key)
        if i < len(self._starts) and self._starts[i] == start_key:
            self._starts.pop(i)
        end_key = (interval.end, dataset_id)
        j = bisect.bisect_left(self._ends, end_key)
        if j < len(self._ends) and self._ends[j] == end_key:
            self._ends.pop(j)

    def __len__(self) -> int:
        return len(self._intervals)

    def _rebuild(self) -> None:
        self._starts = sorted(
            (iv.start, did) for did, iv in self._intervals.items()
        )
        self._ends = sorted(
            (iv.end, did) for did, iv in self._intervals.items()
        )
        self._dirty = False

    def candidates_overlapping(
        self, interval: TimeInterval, margin_seconds: float = 0.0
    ) -> set[str]:
        """Ids whose interval overlaps ``interval`` grown by the margin."""
        if margin_seconds < 0:
            raise ValueError("margin_seconds must be non-negative")
        if self._dirty:
            self._rebuild()
        lo = interval.start - margin_seconds
        hi = interval.end + margin_seconds
        # Not overlapping  <=>  start > hi  OR  end < lo.
        i = bisect.bisect_right(self._starts, (hi, "￿"))
        starts_too_late = {did for __, did in self._starts[i:]}
        j = bisect.bisect_left(self._ends, (lo, ""))
        ends_too_early = {did for __, did in self._ends[:j]}
        return (
            set(self._intervals) - starts_too_late - ends_too_early
        )

    def all_ids(self) -> set[str]:
        """Every registered dataset id."""
        return set(self._intervals)

    def copy(self) -> "IntervalIndex":
        """A structurally independent copy, laziness state included."""
        out = IntervalIndex()
        out._intervals = dict(self._intervals)
        out._dirty = self._dirty
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        return out


#: Above this fraction of the indexed size, :meth:`CatalogIndexes.apply`
#: prefers a full rebuild over item-by-item incremental updates.
REBUILD_CHURN_FRACTION = 0.5


class CatalogIndexes:
    """Both indexes, kept in lockstep, built from a catalog store.

    ``catalog_version`` remembers the :attr:`CatalogStore.version` these
    indexes reflect; search engines compare it against the live catalog
    to detect staleness without scanning (``None`` means unknown — the
    engine falls back to a size comparison).
    """

    def __init__(
        self,
        cell_degrees: float = 0.5,
        catalog_version: int | None = None,
    ) -> None:
        self.spatial = SpatialGridIndex(cell_degrees=cell_degrees)
        self.temporal = IntervalIndex()
        self.catalog_version = catalog_version

    @classmethod
    def build(
        cls, features: list[DatasetFeature] | None = None,
        cell_degrees: float = 0.5,
        catalog_version: int | None = None,
    ) -> "CatalogIndexes":
        """Construct and bulk-load from ``features``."""
        indexes = cls(
            cell_degrees=cell_degrees, catalog_version=catalog_version
        )
        for feature in features or []:
            indexes.insert(feature)
        return indexes

    def insert(self, feature: DatasetFeature) -> None:
        """Register a feature in both indexes."""
        self.spatial.insert(feature.dataset_id, feature.bbox)
        self.temporal.insert(feature.dataset_id, feature.interval)

    def remove(self, dataset_id: str) -> None:
        """Drop a dataset from both indexes."""
        self.spatial.remove(dataset_id)
        self.temporal.remove(dataset_id)

    def apply(
        self,
        added: Iterable[DatasetFeature] = (),
        removed: Iterable[str] = (),
        updated: Iterable[DatasetFeature] = (),
        *,
        catalog_version: int | None = None,
        rebuild_from: Iterable[DatasetFeature] | None = None,
    ) -> "CatalogIndexes":
        """Fold a catalog delta into both indexes in O(changed).

        ``added``/``updated`` carry the new feature states, ``removed``
        the withdrawn dataset ids.  When the churn exceeds
        ``REBUILD_CHURN_FRACTION`` of the indexed size and
        ``rebuild_from`` (an iterable of the *full* current catalog) is
        given, the indexes are rebuilt from scratch instead — beyond
        that point a bulk rebuild is cheaper than item-by-item updates.
        ``catalog_version`` stamps the store version this delta brings
        the indexes up to.
        """
        added = tuple(added)
        removed = tuple(removed)
        updated = tuple(updated)
        churn = len(added) + len(removed) + len(updated)
        if (
            rebuild_from is not None
            and churn > REBUILD_CHURN_FRACTION * max(len(self), 1)
        ):
            self.spatial = SpatialGridIndex(
                cell_degrees=self.spatial.cell_degrees
            )
            self.temporal = IntervalIndex()
            for feature in rebuild_from:
                self.insert(feature)
        else:
            for dataset_id in removed:
                self.remove(dataset_id)
            for feature in added:
                self.insert(feature)
            for feature in updated:
                self.insert(feature)
        if catalog_version is not None:
            self.catalog_version = catalog_version
        return self

    def copy(self) -> "CatalogIndexes":
        """A structurally independent copy of both indexes.

        The refresh path's migration primitive: in-flight requests may
        still be scanning the *old* engine's indexes, and
        :meth:`apply` mutates in place — so a refresh copies first,
        applies the delta to the copy, and hands the copy to the new
        engine.  O(index size) pointer work, no geometric re-derivation.
        """
        out = CatalogIndexes(
            cell_degrees=self.spatial.cell_degrees,
            catalog_version=self.catalog_version,
        )
        out.spatial = self.spatial.copy()
        out.temporal = self.temporal.copy()
        return out

    def __len__(self) -> int:
        return len(self.temporal)

"""Metadata catalog substrate: records, stores and indexes."""

from .index import (
    CatalogIndexes,
    IntervalIndex,
    SpatialGridIndex,
    spatial_query_margins,
)
from .io import (
    CatalogFormatError,
    dump_catalog,
    feature_from_dict,
    feature_to_dict,
    load_catalog,
)
from .records import DatasetFeature, VariableEntry
from .sqlite_store import SqliteCatalog
from .store import (
    CatalogSnapshot,
    CatalogStore,
    DatasetNotFoundError,
    MemoryCatalog,
    SnapshotContentionError,
    SnapshotMutationError,
)

__all__ = [
    "CatalogFormatError",
    "CatalogIndexes",
    "CatalogSnapshot",
    "CatalogStore",
    "DatasetFeature",
    "DatasetNotFoundError",
    "IntervalIndex",
    "MemoryCatalog",
    "SnapshotContentionError",
    "SnapshotMutationError",
    "SpatialGridIndex",
    "SqliteCatalog",
    "VariableEntry",
    "dump_catalog",
    "feature_from_dict",
    "feature_to_dict",
    "load_catalog",
    "spatial_query_margins",
]

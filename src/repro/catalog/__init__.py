"""Metadata catalog substrate: records, stores and indexes."""

from .index import CatalogIndexes, IntervalIndex, SpatialGridIndex
from .io import (
    CatalogFormatError,
    dump_catalog,
    feature_from_dict,
    feature_to_dict,
    load_catalog,
)
from .records import DatasetFeature, VariableEntry
from .sqlite_store import SqliteCatalog
from .store import CatalogStore, DatasetNotFoundError, MemoryCatalog

__all__ = [
    "CatalogFormatError",
    "CatalogIndexes",
    "CatalogStore",
    "DatasetFeature",
    "DatasetNotFoundError",
    "IntervalIndex",
    "MemoryCatalog",
    "SpatialGridIndex",
    "SqliteCatalog",
    "VariableEntry",
    "dump_catalog",
    "feature_from_dict",
    "feature_to_dict",
    "load_catalog",
]

"""SQLite-backed catalog store.

The published metadata catalog of Data Near Here lived in a relational
database; this store provides the same durability with the stdlib
``sqlite3`` module.  The schema is two tables — ``datasets`` and
``variables`` — with the dataset's feature fields flattened into columns
so range predicates can run inside SQLite.

Writes are hardened against contention: file-backed connections set
``busy_timeout`` so SQLite waits out short lock windows itself, and
every write transaction runs under a bounded busy/locked retry
(``_WRITE_RETRY``) with deterministic backoff.  Real SQL errors are
never retried.

The store is also safe to share across threads: one connection is
opened with ``check_same_thread=False`` and every use of it — reads
and write transactions alike — serializes on a process-local
:class:`threading.RLock`.  That keeps the single-connection model
(cursors never interleave, transactions never nest) while letting the
serving layer call :meth:`snapshot` from any thread; concurrent
*searches* then run against the returned
:class:`~repro.catalog.store.CatalogSnapshot` without touching the
connection at all.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Callable, Iterable, TypeVar

from ..core.retry import RetryPolicy, retry_call
from ..geo import BoundingBox, GeoPoint, TimeInterval
from ..obs import get_telemetry
from .index import spatial_query_margins
from .records import DatasetFeature, VariableEntry
from .store import CatalogSnapshot, CatalogStore, DatasetNotFoundError

_T = TypeVar("_T")

#: Bounded retry for write transactions that hit SQLite's transient
#: busy/locked condition.  ``busy_timeout`` (below) already absorbs
#: most contention inside SQLite itself; this layer covers the cases
#: that surface anyway (e.g. a writer holding the lock across its own
#: python work).  Non-transient ``OperationalError``s propagate
#: immediately — see :func:`repro.core.errors.is_transient`.
_WRITE_RETRY = RetryPolicy(
    attempts=3, base_delay=0.01, multiplier=4.0, max_delay=0.1
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS datasets (
    dataset_id   TEXT PRIMARY KEY,
    title        TEXT NOT NULL,
    platform     TEXT NOT NULL,
    file_format  TEXT NOT NULL,
    min_lat      REAL NOT NULL,
    min_lon      REAL NOT NULL,
    max_lat      REAL NOT NULL,
    max_lon      REAL NOT NULL,
    time_start   REAL NOT NULL,
    time_end     REAL NOT NULL,
    row_count    INTEGER NOT NULL,
    source_dir   TEXT NOT NULL,
    attributes   TEXT NOT NULL,
    content_hash TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS variables (
    dataset_id   TEXT NOT NULL REFERENCES datasets(dataset_id)
                 ON DELETE CASCADE,
    position     INTEGER NOT NULL,
    written_name TEXT NOT NULL,
    written_unit TEXT NOT NULL,
    name         TEXT NOT NULL,
    unit         TEXT NOT NULL,
    count        INTEGER NOT NULL,
    minimum      REAL NOT NULL,
    maximum      REAL NOT NULL,
    mean         REAL NOT NULL,
    stddev       REAL NOT NULL,
    excluded     INTEGER NOT NULL DEFAULT 0,
    ambiguous    INTEGER NOT NULL DEFAULT 0,
    context      TEXT NOT NULL DEFAULT '',
    resolution   TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (dataset_id, position)
);
CREATE INDEX IF NOT EXISTS idx_variables_name ON variables(name);
CREATE INDEX IF NOT EXISTS idx_datasets_bbox
    ON datasets(min_lat, max_lat, min_lon, max_lon);
CREATE INDEX IF NOT EXISTS idx_datasets_time
    ON datasets(time_start, time_end);
CREATE TABLE IF NOT EXISTS catalog_meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
INSERT OR IGNORE INTO catalog_meta (key, value) VALUES ('version', 0);
"""

#: R*Tree pushdown prefilter.  The rtree module keys on integer row ids,
#: so ``prefilter_map`` assigns each dataset a stable integer and the
#: triggers keep the rtree in lockstep with ``datasets`` *inside the
#: same transaction* — a publish batch is never observable with the
#: prefilter out of sync.  ``_write_feature`` is DELETE-then-INSERT, so
#: the two triggers also cover updates.  R*Tree stores 32-bit floats
#: rounded outward (the stored box is a superset of the inserted one),
#: which keeps the prefilter conservative: extra candidates possible,
#: missed candidates impossible.
_RTREE_SCHEMA = """
CREATE TABLE IF NOT EXISTS prefilter_map (
    num        INTEGER PRIMARY KEY AUTOINCREMENT,
    dataset_id TEXT UNIQUE NOT NULL
);
CREATE VIRTUAL TABLE IF NOT EXISTS prefilter_rtree USING rtree(
    id, min_lat, max_lat, min_lon, max_lon
);
CREATE TRIGGER IF NOT EXISTS trg_prefilter_insert
AFTER INSERT ON datasets
BEGIN
    INSERT OR IGNORE INTO prefilter_map (dataset_id)
    VALUES (NEW.dataset_id);
    INSERT OR REPLACE INTO prefilter_rtree
    SELECT num, NEW.min_lat, NEW.max_lat, NEW.min_lon, NEW.max_lon
    FROM prefilter_map WHERE dataset_id = NEW.dataset_id;
END;
CREATE TRIGGER IF NOT EXISTS trg_prefilter_delete
AFTER DELETE ON datasets
BEGIN
    DELETE FROM prefilter_rtree WHERE id = (
        SELECT num FROM prefilter_map WHERE dataset_id = OLD.dataset_id
    );
    DELETE FROM prefilter_map WHERE dataset_id = OLD.dataset_id;
END;
"""

#: Re-sync the rtree with ``datasets`` at open time.  A file-backed
#: catalog may have been written by a process running without the
#: prefilter (no triggers): purge entries for datasets that vanished,
#: then register datasets the rtree has never seen.  Idempotent, and a
#: no-op on a catalog that was maintained by the triggers throughout.
_RTREE_BACKFILL = """
DELETE FROM prefilter_rtree WHERE id IN (
    SELECT num FROM prefilter_map
    WHERE dataset_id NOT IN (SELECT dataset_id FROM datasets)
);
DELETE FROM prefilter_map
WHERE dataset_id NOT IN (SELECT dataset_id FROM datasets);
INSERT INTO prefilter_map (dataset_id)
SELECT dataset_id FROM datasets
WHERE dataset_id NOT IN (SELECT dataset_id FROM prefilter_map);
INSERT OR REPLACE INTO prefilter_rtree
SELECT m.num, d.min_lat, d.max_lat, d.min_lon, d.max_lon
FROM datasets AS d
JOIN prefilter_map AS m ON m.dataset_id = d.dataset_id
WHERE m.num NOT IN (SELECT id FROM prefilter_rtree);
"""


class SqliteCatalog(CatalogStore):
    """A :class:`CatalogStore` persisted in SQLite.

    ``path=':memory:'`` (the default) gives a private in-memory database;
    pass a filename for durability across processes.
    """

    def __init__(
        self,
        path: str = ":memory:",
        busy_timeout_ms: int = 5000,
        *,
        enable_prefilter: bool = True,
        enable_rtree: bool = True,
    ) -> None:
        # One shared connection, guarded by ``_lock`` (below) instead of
        # sqlite3's same-thread check: the serving layer snapshots from
        # worker threads while the wrangler publishes from the main one.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._retry = _WRITE_RETRY
        if path != ":memory:":
            # File-backed catalogs take the ingest write path: WAL keeps
            # readers unblocked during a publish transaction and
            # synchronous=NORMAL drops the per-commit fsync to one WAL
            # sync, which is what makes batched publishes cheap.  An
            # in-memory database has no journal to tune — leave it
            # default so private scratch stores behave exactly as before.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
            # Only file-backed databases can be contended by another
            # connection: let SQLite itself wait out short lock windows
            # before the busy error ever reaches the retry layer.
            self._conn.execute(
                f"PRAGMA busy_timeout = {int(busy_timeout_ms)}"
            )
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        # Pushdown prefilter: "rtree" when the R*Tree module is compiled
        # in and requested, else "range" (the indexed min/max columns on
        # ``datasets`` itself), else "none".  Degradation is handled at
        # open time so a catalog written with rtree triggers keeps
        # accepting writes when reopened by a build without the module.
        self._prefilter_mode = "none"
        if enable_prefilter:
            self._init_prefilter(enable_rtree)
        else:
            self._drop_rtree_artifacts()

    # -- pushdown prefilter ---------------------------------------------------

    @property
    def prefilter_mode(self) -> str:
        """Active pushdown mode: ``"rtree"``, ``"range"`` or ``"none"``."""
        return self._prefilter_mode

    def _rtree_available(self) -> bool:
        """Probe whether this SQLite build compiled in the rtree module."""
        try:
            self._conn.execute(
                "CREATE VIRTUAL TABLE temp.rtree_probe "
                "USING rtree(id, x0, x1)"
            )
        except sqlite3.OperationalError:
            return False
        self._conn.execute("DROP TABLE temp.rtree_probe")
        return True

    def _init_prefilter(self, enable_rtree: bool) -> None:
        if enable_rtree:
            if self._rtree_available():
                self._conn.executescript(_RTREE_SCHEMA)
                self._conn.executescript(_RTREE_BACKFILL)
                self._conn.commit()
                self._prefilter_mode = "rtree"
                return
            # One-time (per store) degradation signal; the health report
            # surfaces it so an unexpectedly rtree-less build is visible.
            get_telemetry().count("prefilter.rtree_unavailable")
        self._drop_rtree_artifacts()
        self._prefilter_mode = "range"

    def _drop_rtree_artifacts(self) -> None:
        """Remove rtree triggers/tables left by a previous rtree session.

        The triggers are the dangerous remnant: they reference the
        virtual table on every write, so with the rtree module missing
        every publish would fail.  Dropping the virtual table itself
        also needs the module — when that fails the orphaned table is
        left behind, inert now that the triggers are gone.
        """
        self._conn.execute("DROP TRIGGER IF EXISTS trg_prefilter_insert")
        self._conn.execute("DROP TRIGGER IF EXISTS trg_prefilter_delete")
        try:
            self._conn.execute("DROP TABLE IF EXISTS prefilter_rtree")
        except sqlite3.OperationalError:
            pass
        self._conn.execute("DROP TABLE IF EXISTS prefilter_map")
        self._conn.commit()

    def prefilter_candidates_near(
        self, point: GeoPoint, radius_km: float
    ) -> set[str] | None:
        """Ids whose box may lie within ``radius_km`` of ``point``.

        Runs inside SQLite — against the R*Tree when available, else the
        ``idx_datasets_bbox`` composite index.  Same conservative degree
        margins as :meth:`SpatialGridIndex.candidates_near` (shared via
        :func:`spatial_query_margins`); returns ``None`` when the margin
        covers the globe, i.e. no spatial constraint at all.
        """
        lat_margin, lon_margin = spatial_query_margins(
            point.lat, radius_km
        )
        if lat_margin >= 180.0 or lon_margin >= 360.0:
            return None
        lo_lat = max(-90.0, point.lat - lat_margin)
        hi_lat = min(90.0, point.lat + lat_margin)
        lo_lon = max(-180.0, point.lon - lon_margin)
        hi_lon = min(180.0, point.lon + lon_margin)
        params = (hi_lat, lo_lat, hi_lon, lo_lon)
        with self._lock:
            if self._prefilter_mode == "rtree":
                rows = self._conn.execute(
                    "SELECT m.dataset_id FROM prefilter_rtree AS r "
                    "JOIN prefilter_map AS m ON m.num = r.id "
                    "WHERE r.min_lat <= ? AND r.max_lat >= ? "
                    "AND r.min_lon <= ? AND r.max_lon >= ?",
                    params,
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT dataset_id FROM datasets "
                    "WHERE min_lat <= ? AND max_lat >= ? "
                    "AND min_lon <= ? AND max_lon >= ?",
                    params,
                ).fetchall()
        return {row[0] for row in rows}

    def prefilter_candidates_overlapping(
        self, interval: TimeInterval, margin_seconds: float = 0.0
    ) -> set[str] | None:
        """Ids whose interval overlaps ``interval`` grown by the margin.

        Runs against the ``idx_datasets_time`` composite index; the
        overlap predicate matches :meth:`IntervalIndex.
        candidates_overlapping` exactly (not-overlapping ⇔ start > hi or
        end < lo).
        """
        if margin_seconds < 0:
            raise ValueError("margin_seconds must be non-negative")
        lo = interval.start - margin_seconds
        hi = interval.end + margin_seconds
        with self._lock:
            rows = self._conn.execute(
                "SELECT dataset_id FROM datasets "
                "WHERE time_start <= ? AND time_end >= ?",
                (hi, lo),
            ).fetchall()
        return {row[0] for row in rows}

    def _write(self, fn: Callable[[], _T], key: str) -> _T:
        """Run one write transaction with bounded busy/locked retry.

        ``fn`` must be transactional (all-or-nothing), so a retried call
        replays against unchanged state.  With telemetry active, each
        write batch lands in the ``catalog.write_seconds`` latency
        histogram and absorbed busy/locked retries count as
        ``catalog.write_retries``; when the default disabled registry is
        active this path costs one attribute check.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            with self._lock:
                return retry_call(fn, self._retry, key=key)

        def count_busy(attempt: int, exc: BaseException, pause: float):
            telemetry.count("catalog.write_retries")

        started = time.monotonic()
        with self._lock:
            result = retry_call(
                fn, self._retry, key=key, on_retry=count_busy
            )
        telemetry.observe(
            "catalog.write_seconds", time.monotonic() - started
        )
        telemetry.count("catalog.writes")
        return result

    # -- versioning ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter, persisted with the catalog.

        Read from the database on every access so staleness checks see
        mutations made through *other* connections to the same file.
        """
        with self._lock:
            (value,) = self._conn.execute(
                "SELECT value FROM catalog_meta WHERE key = 'version'"
            ).fetchone()
        return value

    def snapshot(self, attempts: int = 16) -> CatalogSnapshot:
        """A frozen, version-consistent copy of the whole catalog.

        Version and content are read under the connection lock, so the
        snapshot can never straddle a write transaction — a publish
        batch is either fully visible or not at all.
        """
        with self._lock:
            version = self.version
            features = {
                feature.dataset_id: feature
                for feature in self.features()
            }
        return CatalogSnapshot(features, version=version)

    def snapshot_cow(
        self,
        previous: CatalogSnapshot,
        upserted=(),
        removed=(),
        expect_version: int | None = None,
    ) -> CatalogSnapshot | None:
        """Copy-on-write snapshot: read only the delta's rows.

        Same contract as :meth:`CatalogStore.snapshot_cow`; the version
        check and the per-id reads share the connection lock, so the
        delta rows cannot straddle a concurrent write transaction.
        Small deltas pay the per-dataset two-query :meth:`get` cost,
        which is still far below the grouped full read for the
        refresh-sized deltas this path exists for.
        """
        with self._lock:
            version = self.version
            if expect_version is not None and version != expect_version:
                return None
            if version == previous.version:
                return previous
            upserts = {}
            gone = list(removed)
            for dataset_id in upserted:
                try:
                    upserts[dataset_id] = self.get(dataset_id)
                except DatasetNotFoundError:
                    gone.append(dataset_id)
            return previous.evolve(upserts, gone, version=version)

    def _bump_version(self) -> None:
        """Bump inside the caller's transaction."""
        self._conn.execute(
            "UPDATE catalog_meta SET value = value + 1 WHERE key = 'version'"
        )

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "SqliteCatalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dataset-level -------------------------------------------------------

    @staticmethod
    def _dataset_row(feature: DatasetFeature) -> tuple:
        return (
            feature.dataset_id,
            feature.title,
            feature.platform,
            feature.file_format,
            feature.bbox.min_lat,
            feature.bbox.min_lon,
            feature.bbox.max_lat,
            feature.bbox.max_lon,
            feature.interval.start,
            feature.interval.end,
            feature.row_count,
            feature.source_directory,
            json.dumps(feature.attributes, sort_keys=True),
            feature.content_hash,
        )

    @staticmethod
    def _variable_rows(feature: DatasetFeature) -> list[tuple]:
        return [
            (
                feature.dataset_id,
                position,
                v.written_name,
                v.written_unit,
                v.name,
                v.unit,
                v.count,
                v.minimum,
                v.maximum,
                v.mean,
                v.stddev,
                int(v.excluded),
                int(v.ambiguous),
                v.context,
                v.resolution,
            )
            for position, v in enumerate(feature.variables)
        ]

    def _write_feature(self, feature: DatasetFeature) -> None:
        """Insert-or-replace one feature inside the caller's transaction."""
        self._conn.execute(
            "DELETE FROM datasets WHERE dataset_id = ?",
            (feature.dataset_id,),
        )
        self._conn.execute(
            "INSERT INTO datasets VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            self._dataset_row(feature),
        )
        self._conn.executemany(
            "INSERT INTO variables VALUES "
            "(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            self._variable_rows(feature),
        )

    def upsert(self, feature: DatasetFeature) -> None:
        def write() -> None:
            with self._conn:
                self._write_feature(feature)
                self._bump_version()

        self._write(write, f"upsert:{feature.dataset_id}")

    def upsert_many(self, features: Iterable[DatasetFeature]) -> int:
        """Write a whole batch in ONE transaction with ONE version bump.

        Publishing N changed datasets costs one commit (one WAL sync on
        file-backed catalogs) instead of N, and version-keyed caches see
        a single invalidation for the batch.
        """
        # Materialize so a busy-retried transaction replays the same
        # batch even when handed a one-shot generator.
        batch = list(features)

        def write() -> int:
            count = 0
            with self._conn:
                for feature in batch:
                    self._write_feature(feature)
                    count += 1
                if count:
                    self._bump_version()
            return count

        return self._write(write, "upsert_many")

    def get(self, dataset_id: str) -> DatasetFeature:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM datasets WHERE dataset_id = ?", (dataset_id,)
            ).fetchone()
            if row is None:
                raise DatasetNotFoundError(dataset_id)
            return self._feature_from_row(row)

    @staticmethod
    def _variable_from_row(v: tuple) -> VariableEntry:
        return VariableEntry(
            written_name=v[2],
            written_unit=v[3],
            name=v[4],
            unit=v[5],
            count=v[6],
            minimum=v[7],
            maximum=v[8],
            mean=v[9],
            stddev=v[10],
            excluded=bool(v[11]),
            ambiguous=bool(v[12]),
            context=v[13],
            resolution=v[14],
        )

    def _feature_from_row(
        self, row: tuple, variables: list[VariableEntry] | None = None
    ) -> DatasetFeature:
        (
            dataset_id, title, platform, file_format,
            min_lat, min_lon, max_lat, max_lon,
            time_start, time_end, row_count, source_dir,
            attributes_json, content_hash,
        ) = row
        if variables is None:
            variables = [
                self._variable_from_row(v)
                for v in self._conn.execute(
                    "SELECT * FROM variables WHERE dataset_id = ? "
                    "ORDER BY position",
                    (dataset_id,),
                )
            ]
        return DatasetFeature(
            dataset_id=dataset_id,
            title=title,
            platform=platform,
            file_format=file_format,
            bbox=BoundingBox(min_lat, min_lon, max_lat, max_lon),
            interval=TimeInterval(time_start, time_end),
            row_count=row_count,
            source_directory=source_dir,
            attributes=json.loads(attributes_json),
            variables=variables,
            content_hash=content_hash,
        )

    def remove(self, dataset_id: str) -> None:
        def write() -> int:
            with self._conn:
                cursor = self._conn.execute(
                    "DELETE FROM datasets WHERE dataset_id = ?",
                    (dataset_id,),
                )
                if cursor.rowcount:
                    self._bump_version()
            return cursor.rowcount

        if self._write(write, f"remove:{dataset_id}") == 0:
            raise DatasetNotFoundError(dataset_id)

    def remove_many(self, dataset_ids: Iterable[str]) -> int:
        batch = list(dataset_ids)

        def write() -> int:
            removed = 0
            with self._conn:
                for dataset_id in batch:
                    cursor = self._conn.execute(
                        "DELETE FROM datasets WHERE dataset_id = ?",
                        (dataset_id,),
                    )
                    removed += cursor.rowcount
                if removed:
                    self._bump_version()
            return removed

        return self._write(write, "remove_many")

    def features(self):
        """Bulk read: the whole catalog in 2 queries instead of 1+2N.

        Variables are fetched once, grouped by dataset in python, then
        attached as each dataset row streams out — exactly the shape
        :meth:`__iter__` consumers (index builds, publish digests,
        exports) need.  Rows are materialized up front so concurrent
        writes through this connection cannot corrupt the cursor.
        """
        with self._lock:
            grouped: dict[str, list[VariableEntry]] = {}
            for v in self._conn.execute(
                "SELECT * FROM variables ORDER BY dataset_id, position"
            ).fetchall():
                grouped.setdefault(v[0], []).append(
                    self._variable_from_row(v)
                )
            rows = self._conn.execute(
                "SELECT * FROM datasets ORDER BY dataset_id"
            ).fetchall()
        for row in rows:
            yield self._feature_from_row(
                row, variables=grouped.get(row[0], [])
            )

    def dataset_ids(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT dataset_id FROM datasets ORDER BY dataset_id"
            ).fetchall()
        return [r[0] for r in rows]

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM datasets"
            ).fetchone()
        return count

    def clear(self) -> None:
        def write() -> None:
            with self._conn:
                self._conn.execute("DELETE FROM variables")
                self._conn.execute("DELETE FROM datasets")
                self._bump_version()

        self._write(write, "clear")

    def apply_batch(
        self,
        upserts: Iterable[DatasetFeature] = (),
        removals: Iterable[str] = (),
    ) -> tuple[int, int]:
        """Upserts and removals in ONE transaction with ONE version bump.

        This is the publish primitive: a reader (or :meth:`snapshot`)
        sees the catalog strictly before or strictly after the whole
        batch, never between the upserts and the removals.
        """
        upsert_batch = list(upserts)
        removal_batch = list(removals)

        def write() -> tuple[int, int]:
            upserted = 0
            removed = 0
            with self._conn:
                for feature in upsert_batch:
                    self._write_feature(feature)
                    upserted += 1
                for dataset_id in removal_batch:
                    cursor = self._conn.execute(
                        "DELETE FROM datasets WHERE dataset_id = ?",
                        (dataset_id,),
                    )
                    removed += cursor.rowcount
                if upserted or removed:
                    self._bump_version()
            return upserted, removed

        return self._write(write, "apply_batch")

    def replace_all(self, features: Iterable[DatasetFeature]) -> int:
        """Swap in a whole new catalog: one transaction, one bump.

        Unlike ``clear()`` + ``upsert_many()``, no reader can ever see
        the emptied intermediate state.
        """
        batch = list(features)

        def write() -> int:
            with self._conn:
                self._conn.execute("DELETE FROM variables")
                self._conn.execute("DELETE FROM datasets")
                for feature in batch:
                    self._write_feature(feature)
                self._bump_version()
            return len(batch)

        return self._write(write, "replace_all")

    # -- bulk operations pushed into SQL --------------------------------------

    def rename_variables(
        self, mapping: dict[str, str], resolution: str = ""
    ) -> int:
        def write() -> int:
            changed = 0
            with self._conn:
                for old, new in mapping.items():
                    if old == new:
                        continue
                    cursor = self._conn.execute(
                        "UPDATE variables SET name = ?, resolution = ? "
                        "WHERE name = ?",
                        (new, resolution, old),
                    )
                    changed += cursor.rowcount
                if changed:
                    self._bump_version()
            return changed

        return self._write(write, "rename_variables")

    def rename_units(self, mapping: dict[str, str]) -> int:
        def write() -> int:
            changed = 0
            with self._conn:
                for old, new in mapping.items():
                    if old == new:
                        continue
                    cursor = self._conn.execute(
                        "UPDATE variables SET unit = ? WHERE unit = ?",
                        (new, old),
                    )
                    changed += cursor.rowcount
                if changed:
                    self._bump_version()
            return changed

        return self._write(write, "rename_units")

    def set_excluded(self, names: Iterable[str], excluded: bool = True) -> int:
        target = set(names)

        def write() -> int:
            changed = 0
            with self._conn:
                for name in target:
                    cursor = self._conn.execute(
                        "UPDATE variables SET excluded = ? "
                        "WHERE name = ? AND excluded != ?",
                        (int(excluded), name, int(excluded)),
                    )
                    changed += cursor.rowcount
                if changed:
                    self._bump_version()
            return changed

        return self._write(write, "set_excluded")

    def set_ambiguous(self, names: Iterable[str], flag: bool = True) -> int:
        target = set(names)

        def write() -> int:
            changed = 0
            with self._conn:
                for name in target:
                    cursor = self._conn.execute(
                        "UPDATE variables SET ambiguous = ? "
                        "WHERE name = ? AND ambiguous != ?",
                        (int(flag), name, int(flag)),
                    )
                    changed += cursor.rowcount
                if changed:
                    self._bump_version()
            return changed

        return self._write(write, "set_ambiguous")

"""Catalog records: the dataset *feature* and its per-variable entries.

The IR-architecture figure: "Individual datasets scanned once, summarized
into a 'feature' per dataset; features stored in catalog; similarity
search is performed over catalog's contents."  A feature is the dataset's
spatial bounding box, time interval and per-variable summary statistics —
never the raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..geo import BoundingBox, TimeInterval


@dataclass(slots=True)
class VariableEntry:
    """One variable of one dataset, as the catalog knows it.

    ``written_name``/``written_unit`` are immutable provenance — exactly
    what the file said.  ``name``/``unit`` are the *current* (searchable)
    forms that wrangling transformations rewrite.  ``excluded`` marks the
    Table's "excessive variables": hidden from search, shown in detail
    views.  ``ambiguous`` marks names a curator must clarify.
    """

    written_name: str
    written_unit: str
    name: str
    unit: str
    count: int
    minimum: float
    maximum: float
    mean: float
    stddev: float
    excluded: bool = False
    ambiguous: bool = False
    context: str = ""
    resolution: str = ""  # which wrangling step produced `name`

    @classmethod
    def from_written(
        cls,
        written_name: str,
        written_unit: str,
        count: int,
        minimum: float,
        maximum: float,
        mean: float,
        stddev: float,
    ) -> "VariableEntry":
        """A fresh entry whose current form equals the written form."""
        return cls(
            written_name=written_name,
            written_unit=written_unit,
            name=written_name,
            unit=written_unit,
            count=count,
            minimum=minimum,
            maximum=maximum,
            mean=mean,
            stddev=stddev,
        )

    def copy(self) -> "VariableEntry":
        """A detached copy (stores hand out copies, never internals)."""
        return replace(self)


@dataclass(slots=True)
class DatasetFeature:
    """The catalog's summary of one dataset."""

    dataset_id: str  # archive-relative path; unique
    title: str
    platform: str
    file_format: str
    bbox: BoundingBox
    interval: TimeInterval
    row_count: int
    source_directory: str
    attributes: dict[str, str] = field(default_factory=dict)
    variables: list[VariableEntry] = field(default_factory=list)
    content_hash: str = ""  # hash of the source file, for incremental runs

    def variable(self, name: str) -> VariableEntry:
        """The entry whose *current* name is ``name``.

        Raises:
            KeyError: when absent.
        """
        for entry in self.variables:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def searchable_variables(self) -> list[VariableEntry]:
        """Entries visible to search (not excluded)."""
        return [v for v in self.variables if not v.excluded]

    def variable_names(self) -> list[str]:
        """Current names of all variables (excluded included)."""
        return [v.name for v in self.variables]

    def copy(self) -> "DatasetFeature":
        """A deep-enough copy: fresh variable list with copied entries."""
        return DatasetFeature(
            dataset_id=self.dataset_id,
            title=self.title,
            platform=self.platform,
            file_format=self.file_format,
            bbox=self.bbox,
            interval=self.interval,
            row_count=self.row_count,
            source_directory=self.source_directory,
            attributes=dict(self.attributes),
            variables=[v.copy() for v in self.variables],
            content_hash=self.content_hash,
        )

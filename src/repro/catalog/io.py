"""Catalog interchange: JSON export/import.

Published catalogs move between installations (a lab mirrors a site's
catalog, a curator diffs two wrangling runs); a stable, versioned JSON
encoding makes that possible without sharing SQLite files.  NaN-valued
statistics (all-dropout columns) are encoded as ``null`` so the output
is strict JSON.
"""

from __future__ import annotations

import json
import math
from typing import Any

from ..geo import BoundingBox, TimeInterval
from .records import DatasetFeature, VariableEntry
from .store import CatalogStore

FORMAT_VERSION = 1


class CatalogFormatError(ValueError):
    """Raised when JSON cannot be interpreted as a catalog."""


def _num(value: float) -> float | None:
    return None if math.isnan(value) else value


def _denum(value: Any) -> float:
    return math.nan if value is None else float(value)


def feature_to_dict(feature: DatasetFeature) -> dict[str, Any]:
    """One dataset feature as a JSON-ready dict."""
    return {
        "dataset_id": feature.dataset_id,
        "title": feature.title,
        "platform": feature.platform,
        "file_format": feature.file_format,
        "bbox": list(feature.bbox.as_tuple()),
        "interval": list(feature.interval.as_tuple()),
        "row_count": feature.row_count,
        "source_directory": feature.source_directory,
        "attributes": dict(feature.attributes),
        "content_hash": feature.content_hash,
        "variables": [
            {
                "written_name": v.written_name,
                "written_unit": v.written_unit,
                "name": v.name,
                "unit": v.unit,
                "count": v.count,
                "minimum": _num(v.minimum),
                "maximum": _num(v.maximum),
                "mean": _num(v.mean),
                "stddev": _num(v.stddev),
                "excluded": v.excluded,
                "ambiguous": v.ambiguous,
                "context": v.context,
                "resolution": v.resolution,
            }
            for v in feature.variables
        ],
    }


def feature_from_dict(data: dict[str, Any]) -> DatasetFeature:
    """Inverse of :func:`feature_to_dict`.

    Raises:
        CatalogFormatError: on missing fields or malformed geometry.
    """
    try:
        variables = [
            VariableEntry(
                written_name=v["written_name"],
                written_unit=v["written_unit"],
                name=v["name"],
                unit=v["unit"],
                count=int(v["count"]),
                minimum=_denum(v["minimum"]),
                maximum=_denum(v["maximum"]),
                mean=_denum(v["mean"]),
                stddev=_denum(v["stddev"]),
                excluded=bool(v.get("excluded", False)),
                ambiguous=bool(v.get("ambiguous", False)),
                context=v.get("context", ""),
                resolution=v.get("resolution", ""),
            )
            for v in data["variables"]
        ]
        return DatasetFeature(
            dataset_id=data["dataset_id"],
            title=data["title"],
            platform=data["platform"],
            file_format=data["file_format"],
            bbox=BoundingBox(*data["bbox"]),
            interval=TimeInterval(*data["interval"]),
            row_count=int(data["row_count"]),
            source_directory=data["source_directory"],
            attributes=dict(data.get("attributes", {})),
            variables=variables,
            content_hash=data.get("content_hash", ""),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CatalogFormatError(f"bad feature record: {exc}")


def dump_catalog(catalog: CatalogStore, indent: int | None = None) -> str:
    """Serialize a whole catalog to JSON text."""
    payload = {
        "format": "repro-metadata-catalog",
        "version": FORMAT_VERSION,
        "datasets": [feature_to_dict(feature) for feature in catalog],
    }
    return json.dumps(payload, indent=indent, allow_nan=False)


def load_catalog(text: str, into: CatalogStore) -> int:
    """Parse JSON text and upsert every feature into ``into``.

    Returns the number of datasets loaded.

    Raises:
        CatalogFormatError: on wrong format markers or versions.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CatalogFormatError(f"not JSON: {exc}")
    if not isinstance(payload, dict) or payload.get("format") != (
        "repro-metadata-catalog"
    ):
        raise CatalogFormatError("missing catalog format marker")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CatalogFormatError(
            f"unsupported catalog version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    count = 0
    for record in payload.get("datasets", []):
        into.upsert(feature_from_dict(record))
        count += 1
    return count

"""Query workloads with ground-truth relevance.

Queries follow the poster's example shape — location + time window +
variable-with-range — and are generated *from the clean archive*, so
every query has at least one strongly relevant dataset.  Relevance is
graded 0-3 against the clean data (one point per satisfied criterion:
variable present, time overlap, spatial proximity); the messy catalog
never informs the ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..archive.dataset import Dataset
from ..archive.generator import SyntheticArchive
from ..archive.vocabulary import VOCABULARY
from ..core.query import Query, VariableTerm
from ..geo import BoundingBox, GeoPoint, TimeInterval
from ..hierarchy import ConceptHierarchy, vocabulary_hierarchy

RELEVANCE_RADIUS_KM = 100.0
RELEVANCE_TIME_MARGIN_SECONDS = 30.0 * 86400.0


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One workload query plus its graded ground truth."""

    query: Query
    relevance: dict[str, float]  # dataset path -> grade 0..3
    seed_dataset: str  # the clean dataset the query was built from

    @property
    def relevant_ids(self) -> set[str]:
        """Binary relevance: any grade above zero."""
        return {d for d, g in self.relevance.items() if g > 0}

    @property
    def strongly_relevant_ids(self) -> set[str]:
        """Datasets satisfying all three criteria."""
        return {d for d, g in self.relevance.items() if g >= 3.0}


def _dataset_bbox(dataset: Dataset) -> BoundingBox:
    return BoundingBox(
        min(dataset.table.lats),
        min(dataset.table.lons),
        max(dataset.table.lats),
        max(dataset.table.lons),
    )


def _dataset_interval(dataset: Dataset) -> TimeInterval:
    return TimeInterval(min(dataset.table.times), max(dataset.table.times))


def _grade(
    dataset: Dataset,
    query: Query,
    expansion: set[str],
) -> float:
    grade = 0.0
    names = set(dataset.variable_names())
    if names & expansion:
        grade += 1.0
    interval = _dataset_interval(dataset)
    if query.interval is not None and (
        interval.gap_seconds(query.interval) <= RELEVANCE_TIME_MARGIN_SECONDS
    ):
        grade += 1.0
    if query.location is not None:
        bbox = _dataset_bbox(dataset)
        if bbox.distance_km_to_point(query.location) <= RELEVANCE_RADIUS_KM:
            grade += 1.0
    return grade


def generate_workload(
    clean_archive: SyntheticArchive,
    n_queries: int = 20,
    seed: int = 23,
    hierarchy: ConceptHierarchy | None = None,
) -> list[QuerySpec]:
    """Build ``n_queries`` query specs with graded relevance.

    Each query is seeded from one clean dataset: the location is near its
    footprint, the time window sits inside its coverage, and the variable
    term names a canonical variable it carries (range overlapping what it
    observed).  Ground truth then grades *every* clean dataset.

    Raises:
        ValueError: if ``n_queries`` is not positive.
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    rng = random.Random(seed)
    hierarchy = hierarchy or vocabulary_hierarchy()
    datasets = clean_archive.datasets
    specs = []
    for __ in range(n_queries):
        seed_ds = rng.choice(datasets)
        searchable = [
            name
            for name in seed_ds.variable_names()
            if name in VOCABULARY and not VOCABULARY[name].auxiliary
        ]
        variable = rng.choice(searchable)
        column = seed_ds.table.column_named(variable)
        lo, hi = min(column.values), max(column.values)
        width = max(hi - lo, 1e-6)
        q_lo = lo + rng.uniform(0.0, 0.5) * width
        q_hi = q_lo + rng.uniform(0.2, 0.6) * width
        bbox = _dataset_bbox(seed_ds)
        center = bbox.center
        location = GeoPoint(
            min(89.9, max(-89.9, center.lat + rng.uniform(-0.3, 0.3))),
            min(179.9, max(-179.9, center.lon + rng.uniform(-0.3, 0.3))),
        )
        interval = _dataset_interval(seed_ds)
        mid = interval.midpoint
        half_window = rng.uniform(0.5, 10.0) * 86400.0
        query = Query(
            location=location,
            interval=TimeInterval(mid - half_window, mid + half_window),
            variables=(VariableTerm(variable, low=q_lo, high=q_hi),),
        )
        expansion = hierarchy.expand(variable) | {variable}
        relevance = {}
        for dataset in datasets:
            grade = _grade(dataset, query, expansion)
            if grade > 0:
                relevance[dataset.path] = grade
        specs.append(
            QuerySpec(
                query=query,
                relevance=relevance,
                seed_dataset=seed_ds.path,
            )
        )
    return specs

"""Builders for experiment fixtures: sized archives, raw and wrangled
catalogs.

Benchmarks sweep archive size and mess rate; these helpers make that a
one-liner while keeping every step deterministic from the seed.
"""

from __future__ import annotations

from ..archive import (
    ArchiveSpec,
    MessSpec,
    SyntheticArchive,
    VirtualArchive,
    generate_archive,
    inject_mess,
    parse_file,
    render_archive,
)
from ..catalog import MemoryCatalog
from ..core import extract_feature
from ..system import DataNearHere


def spec_for_size(n_datasets: int, seed: int = 7) -> ArchiveSpec:
    """An :class:`ArchiveSpec` with roughly ``n_datasets`` datasets,
    keeping the platform mix of the default spec.

    Raises:
        ValueError: for non-positive sizes.
    """
    if n_datasets <= 0:
        raise ValueError("n_datasets must be positive")
    # Default mix: 8/6/10/3/3 over 30 -> scale each share, min 1.
    share = n_datasets / 30.0
    return ArchiveSpec(
        stations=max(1, round(8 * share)),
        cruises=max(1, round(6 * share)),
        casts=max(1, round(10 * share)),
        gliders=max(1, round(3 * share)),
        met_stations=max(1, round(3 * share)),
        samples_per_station=200,
        samples_per_cruise=100,
        samples_per_cast=50,
        samples_per_glider=150,
        samples_per_met=150,
        seed=seed,
    )


def messy_archive_of_size(
    n_datasets: int,
    seed: int = 7,
    mess_spec: MessSpec | None = None,
) -> tuple[VirtualArchive, dict, SyntheticArchive]:
    """Generate, mess and render an archive of ``n_datasets`` datasets."""
    archive = generate_archive(spec_for_size(n_datasets, seed=seed))
    inject_mess(archive, mess_spec or MessSpec(seed=seed + 1))
    fs, truth = render_archive(archive)
    return fs, truth, archive


def clean_archive_of_size(
    n_datasets: int, seed: int = 7
) -> SyntheticArchive:
    """The clean (pre-mess) twin of :func:`messy_archive_of_size`."""
    return generate_archive(spec_for_size(n_datasets, seed=seed))


def raw_catalog_from(fs: VirtualArchive) -> MemoryCatalog:
    """Scan-once features with *no* wrangling (the no-wrangling baseline)."""
    catalog = MemoryCatalog()
    for record in fs:
        if record.extension in ("csv", "cdl"):
            dataset = parse_file(record.content, record.path)
            catalog.upsert(
                extract_feature(dataset, content_hash=record.content_hash())
            )
    return catalog


def wrangled_system(fs: VirtualArchive) -> DataNearHere:
    """A fully wrangled, search-ready :class:`DataNearHere`."""
    system = DataNearHere(fs)
    system.wrangle()
    return system

"""Experiment harness shared by benchmarks and examples."""

from .builders import (
    clean_archive_of_size,
    messy_archive_of_size,
    raw_catalog_from,
    spec_for_size,
    wrangled_system,
)
from .quality import QualitySummary, evaluate_engine
from .table1 import (
    CategoryAccuracy,
    accuracy_table,
    make_resolver,
    resolution_accuracy,
)
from .workload import (
    RELEVANCE_RADIUS_KM,
    RELEVANCE_TIME_MARGIN_SECONDS,
    QuerySpec,
    generate_workload,
)

__all__ = [
    "CategoryAccuracy",
    "QualitySummary",
    "QuerySpec",
    "RELEVANCE_RADIUS_KM",
    "RELEVANCE_TIME_MARGIN_SECONDS",
    "accuracy_table",
    "clean_archive_of_size",
    "evaluate_engine",
    "generate_workload",
    "make_resolver",
    "messy_archive_of_size",
    "raw_catalog_from",
    "resolution_accuracy",
    "spec_for_size",
    "wrangled_system",
]

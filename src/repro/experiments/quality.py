"""Search-quality evaluation: engines vs workloads."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import ndcg_at_k, precision_at_k, recall_at_k
from .workload import QuerySpec


@dataclass(frozen=True, slots=True)
class QualitySummary:
    """Mean retrieval quality of one engine over one workload."""

    label: str
    ndcg: float
    precision: float
    recall: float
    queries: int
    k: int

    def row(self) -> str:
        """A fixed-width report row."""
        return (
            f"{self.label:28s} nDCG@{self.k}={self.ndcg:5.3f} "
            f"P@{self.k}={self.precision:5.3f} R@{self.k}={self.recall:5.3f}"
        )


def evaluate_engine(
    engine, workload: list[QuerySpec], k: int = 10, label: str = "engine"
) -> QualitySummary:
    """Mean nDCG/precision/recall of ``engine.search`` over the workload.

    Works for both the ranked engine and the boolean baseline (anything
    with ``search(query, limit) -> [SearchResult]``).
    """
    if not workload:
        raise ValueError("workload is empty")
    ndcg_total = precision_total = recall_total = 0.0
    for spec in workload:
        ranked = [
            r.dataset_id for r in engine.search(spec.query, limit=k)
        ]
        ndcg_total += ndcg_at_k(ranked, spec.relevance, k)
        precision_total += precision_at_k(ranked, spec.relevant_ids, k)
        recall_total += recall_at_k(ranked, spec.strongly_relevant_ids, k)
    n = len(workload)
    return QualitySummary(
        label=label,
        ndcg=ndcg_total / n,
        precision=precision_total / n,
        recall=recall_total / n,
        queries=n,
        k=k,
    )

"""Experiment T1: per-category resolution accuracy (the poster's Table).

For each semantic-diversity category, measure how well a resolver
configuration maps as-written names back to ground truth.  Configurations
span the spectrum the poster describes:

* ``none``        — no wrangling at all (a name resolves iff already clean),
* ``tables``      — curated translation tables only (known transformations),
* ``discovery``   — fuzzy/cluster machinery only, no curated tables,
* ``full``        — tables + context + evidence + fuzzy (the whole pipeline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..archive.generator import SyntheticArchive
from ..archive.mess import truth_index
from ..archive.vocabulary import VOCABULARY
from ..catalog.records import VariableEntry
from ..semantics import (
    AbbreviationTable,
    SynonymTable,
    TermResolver,
)


@dataclass(slots=True)
class CategoryAccuracy:
    """Resolution outcomes for one Table row under one configuration."""

    category: str
    correct: int = 0
    wrong: int = 0
    unresolved: int = 0

    @property
    def total(self) -> int:
        """Columns in this category."""
        return self.correct + self.wrong + self.unresolved

    @property
    def accuracy(self) -> float:
        """Fraction resolved to the right canonical name."""
        return self.correct / self.total if self.total else 1.0


def make_resolver(configuration: str) -> TermResolver:
    """Build the resolver for a named configuration.

    Raises:
        ValueError: for unknown configuration names.
    """
    if configuration == "none":
        resolver = TermResolver(
            synonyms=SynonymTable(),
            abbreviations=AbbreviationTable(),
            use_fuzzy=False,
        )
        resolver.context_rules.rules = {}
        return resolver
    if configuration == "tables":
        resolver = TermResolver(use_fuzzy=False)
        return resolver
    if configuration == "discovery":
        resolver = TermResolver(
            synonyms=SynonymTable(),
            abbreviations=AbbreviationTable(),
            use_fuzzy=True,
        )
        return resolver
    if configuration == "full":
        return TermResolver()
    raise ValueError(f"unknown configuration {configuration!r}")


def _entry_for(archive: SyntheticArchive, path: str, written: str):
    dataset = archive.dataset_by_path(path)
    column = dataset.table.column_named(written)
    finite = [v for v in column.values if math.isfinite(v)]
    if not finite:
        finite = [0.0]
    return (
        VariableEntry.from_written(
            written,
            column.unit,
            len(finite),
            min(finite),
            max(finite),
            sum(finite) / len(finite),
            0.0,
        ),
        dataset.platform.value,
    )


def resolution_accuracy(
    archive: SyntheticArchive, configuration: str = "full"
) -> dict[str, CategoryAccuracy]:
    """Per-category accuracy of one configuration on a messy archive.

    For the ``none`` configuration a name counts as correct only when the
    written form already equals the canonical one — exactly what a
    catalog without wrangling delivers.
    """
    resolver = make_resolver(configuration)
    results: dict[str, CategoryAccuracy] = {}
    for (path, written), vt in truth_index(archive).items():
        bucket = results.setdefault(
            vt.category, CategoryAccuracy(category=vt.category)
        )
        if configuration == "none":
            resolved = written if written in VOCABULARY else None
        else:
            entry, platform = _entry_for(archive, path, written)
            resolution = resolver.resolve_entry(entry, platform, path)
            resolved = resolution.canonical
        if resolved == vt.canonical:
            bucket.correct += 1
        elif resolved is None:
            bucket.unresolved += 1
        else:
            bucket.wrong += 1
    return results


def accuracy_table(
    archive: SyntheticArchive,
    configurations: tuple[str, ...] = ("none", "tables", "discovery", "full"),
) -> str:
    """The T1 report: one row per Table category, one column per config."""
    per_config = {
        cfg: resolution_accuracy(archive, cfg) for cfg in configurations
    }
    categories = sorted(
        {c for results in per_config.values() for c in results}
    )
    header = f"{'category':14s}" + "".join(
        f"{cfg:>12s}" for cfg in configurations
    )
    lines = [header]
    for category in categories:
        cells = []
        for cfg in configurations:
            bucket = per_config[cfg].get(category)
            cells.append(
                f"{bucket.accuracy:12.3f}" if bucket else f"{'-':>12s}"
            )
        lines.append(f"{category:14s}" + "".join(cells))
    return "\n".join(lines)

"""Geospatial and temporal primitives for dataset footprints.

Every dataset feature in the metadata catalog carries a spatial bounding
box and a time interval; this package supplies those primitives and the
distance computations ranking is built on.
"""

from .bbox import (
    BoundingBox,
    EmptyBoundingBoxError,
    box_distance_km_to_box,
    box_distance_km_to_point,
)
from .point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    InvalidCoordinateError,
    haversine_km,
    normalize_longitude,
    validate_latitude,
    validate_longitude,
)
from .timeinterval import (
    SECONDS_PER_DAY,
    EmptyIntervalSetError,
    TimeInterval,
    from_epoch,
    interval_gap_seconds,
    to_epoch,
)

__all__ = [
    "BoundingBox",
    "EARTH_RADIUS_KM",
    "EmptyBoundingBoxError",
    "EmptyIntervalSetError",
    "GeoPoint",
    "InvalidCoordinateError",
    "SECONDS_PER_DAY",
    "TimeInterval",
    "box_distance_km_to_box",
    "box_distance_km_to_point",
    "from_epoch",
    "haversine_km",
    "interval_gap_seconds",
    "normalize_longitude",
    "to_epoch",
    "validate_latitude",
    "validate_longitude",
]

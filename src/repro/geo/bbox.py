"""Geographic bounding boxes.

Each dataset's *feature* (its catalog summary) carries a spatial bounding
box; query ranking measures the distance from the query point or region to
that box.  Boxes here never cross the antimeridian — the synthetic archive
(Columbia River estuary / NE Pacific, like CMOP's) does not need it, and
the catalog stores min/max pairs directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from .point import GeoPoint, haversine_km, validate_latitude, validate_longitude


class EmptyBoundingBoxError(ValueError):
    """Raised when a bounding box is built from no points."""


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An immutable lat/lon axis-aligned rectangle.

    Invariant: ``min_lat <= max_lat`` and ``min_lon <= max_lon``.
    A degenerate box (single point) is legal and common: a fixed station's
    footprint is a point.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        validate_latitude(self.min_lat)
        validate_latitude(self.max_lat)
        validate_longitude(self.min_lon)
        validate_longitude(self.max_lon)
        if self.min_lat > self.max_lat:
            raise ValueError(
                f"min_lat {self.min_lat} > max_lat {self.max_lat}"
            )
        if self.min_lon > self.max_lon:
            raise ValueError(
                f"min_lon {self.min_lon} > max_lon {self.max_lon}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: GeoPoint) -> "BoundingBox":
        """A degenerate box covering a single point."""
        return cls(point.lat, point.lon, point.lat, point.lon)

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """The tightest box covering ``points``.

        Raises:
            EmptyBoundingBoxError: if ``points`` is empty.
        """
        iterator: Iterator[GeoPoint] = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise EmptyBoundingBoxError("cannot build a box from no points")
        min_lat = max_lat = first.lat
        min_lon = max_lon = first.lon
        for p in iterator:
            min_lat = min(min_lat, p.lat)
            max_lat = max(max_lat, p.lat)
            min_lon = min(min_lon, p.lon)
            max_lon = max(max_lon, p.lon)
        return cls(min_lat, min_lon, max_lat, max_lon)

    # -- accessors ---------------------------------------------------------

    @property
    def center(self) -> GeoPoint:
        """Box centroid (arithmetic midpoint; fine away from the poles)."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    @property
    def is_point(self) -> bool:
        """True if the box degenerates to a single point."""
        return self.min_lat == self.max_lat and self.min_lon == self.max_lon

    @property
    def width_degrees(self) -> float:
        """Longitudinal extent in degrees."""
        return self.max_lon - self.min_lon

    @property
    def height_degrees(self) -> float:
        """Latitudinal extent in degrees."""
        return self.max_lat - self.min_lat

    # -- geometry ----------------------------------------------------------

    def contains_point(self, point: GeoPoint) -> bool:
        """True if ``point`` lies inside or on the border of the box."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share any point (borders count)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The tightest box covering both boxes."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

    def expand(self, degrees: float) -> "BoundingBox":
        """A box grown by ``degrees`` on every side, clamped to the globe."""
        if degrees < 0:
            raise ValueError("expand() takes a non-negative margin")
        return BoundingBox(
            max(-90.0, self.min_lat - degrees),
            max(-180.0, self.min_lon - degrees),
            min(90.0, self.max_lat + degrees),
            min(180.0, self.max_lon + degrees),
        )

    def closest_point_to(self, point: GeoPoint) -> GeoPoint:
        """The point of the box nearest to ``point`` (point itself if inside)."""
        lat = min(max(point.lat, self.min_lat), self.max_lat)
        lon = min(max(point.lon, self.min_lon), self.max_lon)
        return GeoPoint(lat, lon)

    def distance_km_to_point(self, point: GeoPoint) -> float:
        """Great-circle distance from ``point`` to the nearest box point.

        Zero when the point is inside the box.  This is the quantity the
        ranking function's location term is built on.  The nearest box
        point is found by lat/lon clamping; because the shorter way
        around the globe may pass the antimeridian, both box edges are
        also considered (which keeps the result within ~0.1% of the true
        spherical minimum even at planetary scales).
        """
        nearest = self.closest_point_to(point)
        best = haversine_km(point.lat, point.lon, nearest.lat, nearest.lon)
        if best == 0.0:
            return 0.0
        # On a sphere the nearest point of a meridian edge is not the
        # clamped latitude when the longitude gap is large: minimizing
        # the spherical law of cosines over latitude gives
        # tan(lat*) = tan(q_lat) / cos(dlon).  Check both edges (which
        # also covers the shorter way around the antimeridian).
        for lon in (self.min_lon, self.max_lon):
            dlon = math.radians(point.lon - lon)
            cos_dlon = math.cos(dlon)
            if abs(cos_dlon) > 1e-12:
                optimal = math.degrees(
                    math.atan(math.tan(math.radians(point.lat)) / cos_dlon)
                )
            else:
                optimal = 0.0
            clamped = min(max(optimal, self.min_lat), self.max_lat)
            # The stationary point may be the far side of the great
            # circle; the constrained minimum is then at an edge corner,
            # so evaluate those too.
            for lat in (clamped, self.min_lat, self.max_lat):
                best = min(
                    best, haversine_km(point.lat, point.lon, lat, lon)
                )
        return best

    def distance_km_to_box(self, other: "BoundingBox") -> float:
        """Great-circle distance between nearest points of two boxes.

        Zero when they intersect.
        """
        if self.intersects(other):
            return 0.0
        # Clamp each box's nearest corner toward the other box.
        lat = min(max(other.min_lat, self.min_lat), self.max_lat)
        lon = min(max(other.min_lon, self.min_lon), self.max_lon)
        nearest_self = GeoPoint(lat, lon)
        nearest_other = other.closest_point_to(nearest_self)
        return nearest_self.distance_km(nearest_other)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_lat, min_lon, max_lat, max_lon)``."""
        return (self.min_lat, self.min_lon, self.max_lat, self.max_lon)

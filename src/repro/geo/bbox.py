"""Geographic bounding boxes.

Each dataset's *feature* (its catalog summary) carries a spatial bounding
box; query ranking measures the distance from the query point or region to
that box.  Boxes here never cross the antimeridian — the synthetic archive
(Columbia River estuary / NE Pacific, like CMOP's) does not need it, and
the catalog stores min/max pairs directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from .point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    haversine_km,
    validate_latitude,
    validate_longitude,
)


class EmptyBoundingBoxError(ValueError):
    """Raised when a bounding box is built from no points."""


def box_distance_km_to_point(
    min_lat: float,
    min_lon: float,
    max_lat: float,
    max_lon: float,
    lat: float,
    lon: float,
) -> float:
    """Scalar core of :meth:`BoundingBox.distance_km_to_point`.

    Operates on bare floats so the columnar scoring engine can run it
    over flat coordinate columns without constructing a box or point per
    row; the method delegates here, which is what makes the two scoring
    paths bit-identical.
    """
    # The haversine half-angle term ``a`` (see :func:`haversine_km`) is
    # monotone in distance, so the minimum over candidate points can be
    # taken on ``a`` directly and converted once at the end.  That lets
    # the query point's trig be hoisted out of the candidate loop and
    # the per-edge longitude term be shared by its three candidate
    # latitudes — this kernel runs per row of the columnar scan, and the
    # seven full haversine evaluations it replaces dominated that loop.
    radians = math.radians
    sin = math.sin
    cos = math.cos
    near_lat = min(max(lat, min_lat), max_lat)
    near_lon = min(max(lon, min_lon), max_lon)
    phi1 = radians(lat)
    cos_phi1 = cos(phi1)
    best_a = (
        sin(radians(near_lat - lat) / 2.0) ** 2
        + cos_phi1 * cos(radians(near_lat))
        * sin(radians(near_lon - lon) / 2.0) ** 2
    )
    if best_a != 0.0:
        t_min = sin(radians(min_lat - lat) / 2.0) ** 2
        cc_min = cos_phi1 * cos(radians(min_lat))
        t_max = sin(radians(max_lat - lat) / 2.0) ** 2
        cc_max = cos_phi1 * cos(radians(max_lat))
        tan_phi1 = math.tan(phi1)
        # On a sphere the nearest point of a meridian edge is not the
        # clamped latitude when the longitude gap is large: minimizing
        # the spherical law of cosines over latitude gives
        # tan(lat*) = tan(q_lat) / cos(dlon).  Check both edges (which
        # also covers the shorter way around the antimeridian).
        for edge_lon in (min_lon, max_lon):
            cos_dlon = cos(radians(lon - edge_lon))
            if abs(cos_dlon) > 1e-12:
                optimal = math.degrees(math.atan(tan_phi1 / cos_dlon))
            else:
                optimal = 0.0
            clamped = min(max(optimal, min_lat), max_lat)
            sin_sq_dlambda = sin(radians(edge_lon - lon) / 2.0) ** 2
            # The stationary point may be the far side of the great
            # circle; the constrained minimum is then at an edge corner,
            # so evaluate those too.
            a = (
                sin(radians(clamped - lat) / 2.0) ** 2
                + cos_phi1 * cos(radians(clamped)) * sin_sq_dlambda
            )
            if a < best_a:
                best_a = a
            a = t_min + cc_min * sin_sq_dlambda
            if a < best_a:
                best_a = a
            a = t_max + cc_max * sin_sq_dlambda
            if a < best_a:
                best_a = a
    best_a = min(1.0, max(0.0, best_a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(best_a))


def box_distance_km_to_box(
    min_lat: float,
    min_lon: float,
    max_lat: float,
    max_lon: float,
    other_min_lat: float,
    other_min_lon: float,
    other_max_lat: float,
    other_max_lon: float,
) -> float:
    """Scalar core of :meth:`BoundingBox.distance_km_to_box`."""
    if not (
        other_min_lat > max_lat
        or other_max_lat < min_lat
        or other_min_lon > max_lon
        or other_max_lon < min_lon
    ):
        return 0.0
    # Clamp this box's nearest corner toward the other box, then clamp
    # that point back into the other box.
    lat = min(max(other_min_lat, min_lat), max_lat)
    lon = min(max(other_min_lon, min_lon), max_lon)
    near_lat = min(max(lat, other_min_lat), other_max_lat)
    near_lon = min(max(lon, other_min_lon), other_max_lon)
    return haversine_km(lat, lon, near_lat, near_lon)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An immutable lat/lon axis-aligned rectangle.

    Invariant: ``min_lat <= max_lat`` and ``min_lon <= max_lon``.
    A degenerate box (single point) is legal and common: a fixed station's
    footprint is a point.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        validate_latitude(self.min_lat)
        validate_latitude(self.max_lat)
        validate_longitude(self.min_lon)
        validate_longitude(self.max_lon)
        if self.min_lat > self.max_lat:
            raise ValueError(
                f"min_lat {self.min_lat} > max_lat {self.max_lat}"
            )
        if self.min_lon > self.max_lon:
            raise ValueError(
                f"min_lon {self.min_lon} > max_lon {self.max_lon}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: GeoPoint) -> "BoundingBox":
        """A degenerate box covering a single point."""
        return cls(point.lat, point.lon, point.lat, point.lon)

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """The tightest box covering ``points``.

        Raises:
            EmptyBoundingBoxError: if ``points`` is empty.
        """
        iterator: Iterator[GeoPoint] = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise EmptyBoundingBoxError("cannot build a box from no points")
        min_lat = max_lat = first.lat
        min_lon = max_lon = first.lon
        for p in iterator:
            min_lat = min(min_lat, p.lat)
            max_lat = max(max_lat, p.lat)
            min_lon = min(min_lon, p.lon)
            max_lon = max(max_lon, p.lon)
        return cls(min_lat, min_lon, max_lat, max_lon)

    # -- accessors ---------------------------------------------------------

    @property
    def center(self) -> GeoPoint:
        """Box centroid (arithmetic midpoint; fine away from the poles)."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    @property
    def is_point(self) -> bool:
        """True if the box degenerates to a single point."""
        return self.min_lat == self.max_lat and self.min_lon == self.max_lon

    @property
    def width_degrees(self) -> float:
        """Longitudinal extent in degrees."""
        return self.max_lon - self.min_lon

    @property
    def height_degrees(self) -> float:
        """Latitudinal extent in degrees."""
        return self.max_lat - self.min_lat

    # -- geometry ----------------------------------------------------------

    def contains_point(self, point: GeoPoint) -> bool:
        """True if ``point`` lies inside or on the border of the box."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share any point (borders count)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The tightest box covering both boxes."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

    def expand(self, degrees: float) -> "BoundingBox":
        """A box grown by ``degrees`` on every side, clamped to the globe."""
        if degrees < 0:
            raise ValueError("expand() takes a non-negative margin")
        return BoundingBox(
            max(-90.0, self.min_lat - degrees),
            max(-180.0, self.min_lon - degrees),
            min(90.0, self.max_lat + degrees),
            min(180.0, self.max_lon + degrees),
        )

    def closest_point_to(self, point: GeoPoint) -> GeoPoint:
        """The point of the box nearest to ``point`` (point itself if inside)."""
        lat = min(max(point.lat, self.min_lat), self.max_lat)
        lon = min(max(point.lon, self.min_lon), self.max_lon)
        return GeoPoint(lat, lon)

    def distance_km_to_point(self, point: GeoPoint) -> float:
        """Great-circle distance from ``point`` to the nearest box point.

        Zero when the point is inside the box.  This is the quantity the
        ranking function's location term is built on.  The nearest box
        point is found by lat/lon clamping; because the shorter way
        around the globe may pass the antimeridian, both box edges are
        also considered (which keeps the result within ~0.1% of the true
        spherical minimum even at planetary scales).
        """
        return box_distance_km_to_point(
            self.min_lat, self.min_lon, self.max_lat, self.max_lon,
            point.lat, point.lon,
        )

    def distance_km_to_box(self, other: "BoundingBox") -> float:
        """Great-circle distance between nearest points of two boxes.

        Zero when they intersect.
        """
        return box_distance_km_to_box(
            self.min_lat, self.min_lon, self.max_lat, self.max_lon,
            other.min_lat, other.min_lon, other.max_lat, other.max_lon,
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_lat, min_lon, max_lat, max_lon)``."""
        return (self.min_lat, self.min_lon, self.max_lat, self.max_lon)

"""Geographic points and great-circle distances.

The Data Near Here system ranks datasets by distance between the query
location and each dataset's spatial footprint.  This module supplies the
point primitive and the haversine great-circle distance used throughout
the scoring code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0088
"""Mean Earth radius (IUGG), in kilometres."""

_MAX_LAT = 90.0
_MAX_LON = 180.0


class InvalidCoordinateError(ValueError):
    """Raised when a latitude/longitude pair is outside the legal range."""


def validate_latitude(lat: float) -> float:
    """Return ``lat`` if it lies in [-90, 90], else raise.

    Raises:
        InvalidCoordinateError: if ``lat`` is not a finite number in range.
    """
    if not math.isfinite(lat) or not -_MAX_LAT <= lat <= _MAX_LAT:
        raise InvalidCoordinateError(f"latitude {lat!r} outside [-90, 90]")
    return float(lat)


def validate_longitude(lon: float) -> float:
    """Return ``lon`` if it lies in [-180, 180], else raise.

    Raises:
        InvalidCoordinateError: if ``lon`` is not a finite number in range.
    """
    if not math.isfinite(lon) or not -_MAX_LON <= lon <= _MAX_LON:
        raise InvalidCoordinateError(f"longitude {lon!r} outside [-180, 180]")
    return float(lon)


def normalize_longitude(lon: float) -> float:
    """Wrap an arbitrary finite longitude into [-180, 180]."""
    if not math.isfinite(lon):
        raise InvalidCoordinateError(f"longitude {lon!r} is not finite")
    wrapped = math.fmod(lon + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    return wrapped - 180.0


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """An immutable (latitude, longitude) pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "lat", validate_latitude(self.lat))
        object.__setattr__(self, "lon", validate_longitude(self.lon))

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.4f}{ns} {abs(self.lon):.4f}{ew}"


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in kilometres.

    Uses the haversine formula, which is numerically stable for small
    distances (unlike the spherical law of cosines).
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    # Clamp to [0, 1] against floating-point drift before asin.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))

"""Closed time intervals and the interval algebra used by ranking.

Dataset features carry the observation time range; queries carry a target
interval ("mid-2010").  The ranking's time term is built from gap and
overlap computations defined here.  Timestamps are Unix epoch seconds
(floats), which keeps the catalog schema flat and arithmetic trivial;
helpers convert to and from ``datetime``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, Iterator

SECONDS_PER_DAY = 86400.0


class EmptyIntervalSetError(ValueError):
    """Raised when an interval hull is requested over no intervals."""


def interval_gap_seconds(
    a_start: float, a_end: float, b_start: float, b_end: float
) -> float:
    """Scalar core of :meth:`TimeInterval.gap_seconds`.

    Operates on bare endpoint floats so the columnar scoring engine can
    run it over flat time columns without constructing an interval per
    row; the method delegates here, keeping both scoring paths
    bit-identical.
    """
    if a_start <= b_end and b_start <= a_end:
        return 0.0
    if a_end < b_start:
        return b_start - a_end
    return a_start - b_end


def to_epoch(dt: datetime) -> float:
    """Convert a datetime to epoch seconds (naive datetimes assumed UTC)."""
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt.timestamp()


def from_epoch(epoch: float) -> datetime:
    """Convert epoch seconds to an aware UTC datetime."""
    return datetime.fromtimestamp(epoch, tz=timezone.utc)


@dataclass(frozen=True, slots=True)
class TimeInterval:
    """A closed interval ``[start, end]`` in epoch seconds.

    Invariant: ``start <= end``.  An instant (``start == end``) is legal —
    a single-sample dataset has an instant footprint.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValueError("interval endpoints must be finite")
        if self.start > self.end:
            raise ValueError(f"start {self.start} > end {self.end}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_datetimes(cls, start: datetime, end: datetime) -> "TimeInterval":
        """Build from two datetimes (naive treated as UTC)."""
        return cls(to_epoch(start), to_epoch(end))

    @classmethod
    def instant(cls, epoch: float) -> "TimeInterval":
        """A zero-length interval at ``epoch``."""
        return cls(epoch, epoch)

    @classmethod
    def hull(cls, intervals: Iterable["TimeInterval"]) -> "TimeInterval":
        """The tightest interval covering all of ``intervals``.

        Raises:
            EmptyIntervalSetError: if ``intervals`` is empty.
        """
        iterator: Iterator[TimeInterval] = iter(intervals)
        try:
            first = next(iterator)
        except StopIteration:
            raise EmptyIntervalSetError("hull of no intervals")
        start, end = first.start, first.end
        for iv in iterator:
            start = min(start, iv.start)
            end = max(end, iv.end)
        return cls(start, end)

    # -- accessors ---------------------------------------------------------

    @property
    def duration_seconds(self) -> float:
        """Length of the interval in seconds (zero for an instant)."""
        return self.end - self.start

    @property
    def duration_days(self) -> float:
        """Length of the interval in days."""
        return self.duration_seconds / SECONDS_PER_DAY

    @property
    def midpoint(self) -> float:
        """Epoch seconds of the interval's midpoint."""
        return (self.start + self.end) / 2.0

    @property
    def start_datetime(self) -> datetime:
        """Start as an aware UTC datetime."""
        return from_epoch(self.start)

    @property
    def end_datetime(self) -> datetime:
        """End as an aware UTC datetime."""
        return from_epoch(self.end)

    # -- algebra -----------------------------------------------------------

    def contains(self, epoch: float) -> bool:
        """True if ``epoch`` lies within the closed interval."""
        return self.start <= epoch <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """True if the closed intervals share at least one instant."""
        return self.start <= other.end and other.start <= self.end

    def overlap_seconds(self, other: "TimeInterval") -> float:
        """Length of the intersection, in seconds (zero when disjoint)."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        return max(0.0, hi - lo)

    def gap_seconds(self, other: "TimeInterval") -> float:
        """Distance between the closed intervals (zero when they overlap).

        This is the quantity the ranking's time term is built on: how far
        the dataset's coverage is from the query window.
        """
        return interval_gap_seconds(
            self.start, self.end, other.start, other.end
        )

    def intersection(self, other: "TimeInterval") -> "TimeInterval | None":
        """The overlapping interval, or None when disjoint."""
        if not self.overlaps(other):
            return None
        return TimeInterval(
            max(self.start, other.start), min(self.end, other.end)
        )

    def union_hull(self, other: "TimeInterval") -> "TimeInterval":
        """The tightest interval covering both (gap included)."""
        return TimeInterval(
            min(self.start, other.start), max(self.end, other.end)
        )

    def expand(self, seconds: float) -> "TimeInterval":
        """An interval grown by ``seconds`` on each side."""
        if seconds < 0:
            raise ValueError("expand() takes a non-negative margin")
        return TimeInterval(self.start - seconds, self.end + seconds)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(start, end)`` in epoch seconds."""
        return (self.start, self.end)

    def __str__(self) -> str:
        return (
            f"[{self.start_datetime:%Y-%m-%d %H:%M}"
            f" .. {self.end_datetime:%Y-%m-%d %H:%M}]"
        )

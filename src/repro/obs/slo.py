"""Sliding-window SLO tracking for the serving tier.

The cumulative counters in :class:`~repro.obs.telemetry.Telemetry`
answer "how many, ever"; an operator paging at 3 a.m. needs "how bad,
*lately*".  :class:`SLOTracker` keeps ring-buffer windows of recent
request outcomes (1 m / 5 m / 30 m by default) and grades them against
a declared :class:`SLOConfig`:

* **latency** — p50/p95/p99 by nearest-rank over every request that
  actually ran (errors included: a 500 that took four seconds is tail
  latency, not a statistical inconvenience),
* **error rate** — internal failures over total requests,
* **availability** — the share of requests that got a useful answer:
  ``(total - errors - rejected) / total``.  Admission rejections (429)
  count *against availability but not against the error rate* — a
  shedding service is degraded, not broken.

The clock is injectable (any ``() -> float`` monotonic source), so
tests drive windows deterministically without sleeping.  All methods
are thread-safe; ``record`` is O(1) amortised (pruning pops only
expired entries) and is called once per served request.

A window with no samples reports ``status="ok"`` — no data is not an
outage.  The overall status is ``degraded`` as soon as *any* window
breaches any target: short windows catch spikes, long windows catch
slow burns.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

#: Default window lengths, seconds.
DEFAULT_WINDOWS: tuple[int, ...] = (60, 300, 1800)


@dataclass(frozen=True, slots=True)
class SLOConfig:
    """The declared service-level objective.

    Defaults are deliberately loose — a laptop-class deployment should
    sit comfortably inside them; ``repro serve`` flags tighten them for
    real deployments.
    """

    #: p95 latency target, seconds.
    latency_p95_seconds: float = 0.5
    #: Tolerated internal-error fraction.
    max_error_rate: float = 0.01
    #: Required fraction of requests answered (not errored or shed).
    min_availability: float = 0.99

    def to_dict(self) -> dict:
        return {
            "latency_p95_seconds": self.latency_p95_seconds,
            "max_error_rate": self.max_error_rate,
            "min_availability": self.min_availability,
        }


def nearest_rank(sorted_values: list[float], p: float) -> float:
    """The nearest-rank ``p``-percentile of pre-sorted values.

    Exact order statistics — no interpolation — so a window of one
    request reports that request's latency at every percentile.
    Returns 0.0 for an empty list.
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(p * len(sorted_values)))
    return sorted_values[rank - 1]


def _window_label(seconds: int) -> str:
    return f"{seconds // 60}m" if seconds % 60 == 0 else f"{seconds}s"


class SLOTracker:
    """Ring-buffer outcome windows graded against an :class:`SLOConfig`."""

    def __init__(
        self,
        config: SLOConfig | None = None,
        windows: tuple[int, ...] = DEFAULT_WINDOWS,
        clock=time.monotonic,
    ):
        if not windows or any(w <= 0 for w in windows):
            raise ValueError("windows must be positive durations")
        self.config = config or SLOConfig()
        self.windows = tuple(sorted(windows))
        self._clock = clock
        self._lock = threading.Lock()
        #: One deque per window of ``(t, latency, errored, rejected)``;
        #: the longest window could serve all of them, but per-window
        #: deques keep pruning O(expired) with no re-scanning.
        self._events: dict[int, deque] = {
            w: deque() for w in self.windows
        }

    def record(
        self,
        latency_seconds: float,
        *,
        error: bool = False,
        rejected: bool = False,
    ) -> None:
        """Record one finished request's outcome."""
        now = self._clock()
        entry = (now, float(latency_seconds), bool(error), bool(rejected))
        with self._lock:
            for window, events in self._events.items():
                events.append(entry)
            self._prune(now)

    def _prune(self, now: float) -> None:
        for window, events in self._events.items():
            horizon = now - window
            while events and events[0][0] <= horizon:
                events.popleft()

    def window_report(self, window: int) -> dict:
        """One window's measured numbers and pass/fail verdict."""
        if window not in self._events:
            raise KeyError(f"no such window: {window}s")
        now = self._clock()
        with self._lock:
            self._prune(now)
            events = list(self._events[window])
        total = len(events)
        if total == 0:
            return {
                "window_seconds": window,
                "requests": 0,
                "errors": 0,
                "rejected": 0,
                "latency_p50": 0.0,
                "latency_p95": 0.0,
                "latency_p99": 0.0,
                "error_rate": 0.0,
                "availability": 1.0,
                "breached": [],
                "status": "ok",
            }
        errors = sum(1 for e in events if e[2])
        rejected = sum(1 for e in events if e[3])
        # Latency over requests that ran (rejections fast-fail at the
        # admission gate; their latencies would only flatter the tail).
        ran = sorted(e[1] for e in events if not e[3])
        p50 = nearest_rank(ran, 0.50)
        p95 = nearest_rank(ran, 0.95)
        p99 = nearest_rank(ran, 0.99)
        error_rate = errors / total
        availability = (total - errors - rejected) / total
        breached: list[str] = []
        if ran and p95 > self.config.latency_p95_seconds:
            breached.append("latency_p95")
        if error_rate > self.config.max_error_rate:
            breached.append("error_rate")
        if availability < self.config.min_availability:
            breached.append("availability")
        return {
            "window_seconds": window,
            "requests": total,
            "errors": errors,
            "rejected": rejected,
            "latency_p50": p50,
            "latency_p95": p95,
            "latency_p99": p99,
            "error_rate": error_rate,
            "availability": availability,
            "breached": breached,
            "status": "degraded" if breached else "ok",
        }

    def report(self) -> dict:
        """All windows plus the overall verdict (the ``/healthz`` shape)."""
        windows = {
            _window_label(w): self.window_report(w) for w in self.windows
        }
        degraded = any(
            entry["status"] != "ok" for entry in windows.values()
        )
        return {
            "status": "degraded" if degraded else "ok",
            "config": self.config.to_dict(),
            "windows": windows,
        }

"""The slow-query flight recorder: "why was *that* request slow?".

Aggregates (histograms, SLO windows) say the p99 moved; they cannot
say which query moved it.  :class:`FlightRecorder` keeps the receipts:
a bounded ring of the **N slowest** requests plus **every erroring**
request (up to its own bound), each captured as a
:class:`FlightRecord` — request id, query text, status, latency,
result stats and the request's *full span tree* pulled out of the
shared telemetry by ``request_id`` stamp.

The capture protocol is two-phase so the request path stays cheap:

1. the HTTP handler asks :meth:`FlightRecorder.interested` with just
   the latency and error flag — an O(1) check against the current
   slowest-heap floor,
2. only when interested does the caller pay to filter the shared span
   list for this request's spans and build the record.

Retention is explicitly bounded twice over: the recorder holds at most
``slow_capacity`` slow records and ``error_capacity`` error records
(oldest errors roll off; slow records are evicted by a faster
request), and the spans inside a record were copied at capture time —
so the telemetry registry's own ``max_spans`` cap can drop or recycle
spans later without hollowing out the recorder.  The flip side: a
request served *after* the registry hit its span cap may capture an
empty span list; the record still keeps id, query and latency.

Thread-safe; imports nothing from the rest of the package.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import IO

#: Default bounds: enough to tell a story, small enough to forget.
DEFAULT_SLOW_CAPACITY = 16
DEFAULT_ERROR_CAPACITY = 32


@dataclass(slots=True)
class FlightRecord:
    """One captured request, self-contained and JSON-able."""

    request_id: str
    query: str
    status: int
    latency_seconds: float
    error: bool = False
    #: Result stats / access-log attrs (candidates in/out, cache hit,
    #: snapshot version ...) — whatever the request context gathered.
    attrs: dict = field(default_factory=dict)
    #: The request's span tree as exported span dicts, captured at
    #: record time (immune to later registry truncation).
    spans: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "query": self.query,
            "status": self.status,
            "latency_seconds": self.latency_seconds,
            "error": self.error,
            "attrs": dict(self.attrs),
            "spans": list(self.spans),
        }


class FlightRecorder:
    """Bounded keeper of the slowest and the broken."""

    def __init__(
        self,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
        error_capacity: int = DEFAULT_ERROR_CAPACITY,
    ):
        if slow_capacity < 1 or error_capacity < 1:
            raise ValueError("capacities must be >= 1")
        self.slow_capacity = slow_capacity
        self.error_capacity = error_capacity
        self._lock = threading.Lock()
        #: Min-heap of ``(latency, seq, record)`` — the root is the
        #: *fastest of the slowest*, i.e. the eviction candidate.
        self._slow: list[tuple[float, int, FlightRecord]] = []
        self._errors: list[FlightRecord] = []
        self._seq = itertools.count()
        self.captured = 0

    def interested(self, latency_seconds: float, error: bool) -> bool:
        """Would a request with this outcome be kept?  O(1), no capture.

        The handler calls this *before* paying for span extraction, so
        the common fast-and-fine request never touches the span list.
        """
        if error:
            return True
        with self._lock:
            if len(self._slow) < self.slow_capacity:
                return True
            return latency_seconds > self._slow[0][0]

    def record(self, record: FlightRecord) -> bool:
        """Offer a captured record; returns True when it was kept."""
        with self._lock:
            if record.error:
                self._errors.append(record)
                if len(self._errors) > self.error_capacity:
                    self._errors.pop(0)  # oldest error rolls off
                self.captured += 1
                return True
            entry = (record.latency_seconds, next(self._seq), record)
            if len(self._slow) < self.slow_capacity:
                heapq.heappush(self._slow, entry)
                self.captured += 1
                return True
            if record.latency_seconds > self._slow[0][0]:
                heapq.heapreplace(self._slow, entry)
                self.captured += 1
                return True
            return False

    def snapshot(self) -> dict:
        """The ``/debug/slow`` body: slowest-first, then recent errors."""
        with self._lock:
            slowest = [
                record.to_dict()
                for _, _, record in sorted(
                    self._slow, key=lambda e: (-e[0], e[1])
                )
            ]
            errors = [record.to_dict() for record in self._errors]
        return {
            "slow_capacity": self.slow_capacity,
            "error_capacity": self.error_capacity,
            "captured": self.captured,
            "slowest": slowest,
            "errors": errors,
        }

    def dump(self, destination: str | IO[str]) -> int:
        """Write the snapshot as JSON; returns records written."""
        snapshot = self.snapshot()
        own = isinstance(destination, str)
        fh = open(destination, "w", encoding="utf-8") if own else destination
        try:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        finally:
            if own:
                fh.close()
        return len(snapshot["slowest"]) + len(snapshot["errors"])


def spans_for_request(spans: list, request_id: str) -> list[dict]:
    """Filter exported span dicts (or records) down to one request.

    Accepts either :class:`~repro.obs.telemetry.SpanRecord` objects or
    their ``to_dict`` form, returning dicts either way — the recorder
    stores plain data only.
    """
    captured: list[dict] = []
    for span in spans:
        payload = span if isinstance(span, dict) else span.to_dict()
        if payload.get("attrs", {}).get("request_id") == request_id:
            captured.append(payload)
    return captured

"""The structured trace sink: one JSONL event per span / metric flush.

A telemetry snapshot flattens into a line-delimited JSON trace::

    {"v": 1, "type": "meta", "schema": 1, "spans": 12, ...}
    {"v": 1, "type": "span", "name": "scan-archive", "path": "wrangle/...",
     "start": 0.01, "duration": 0.42, "status": "ok", "attrs": {...}}
    {"v": 1, "type": "counter", "name": "scan.quarantined", "value": 3}
    {"v": 1, "type": "gauge", "name": "catalog.size", "value": 60}
    {"v": 1, "type": "histogram", "name": "search.query_seconds",
     "bounds": [...], "counts": [...], "count": 9, "sum": 0.1, ...}

Every line carries the schema version (``v``) so downstream consumers
can evolve; :func:`validate_trace_lines` is the machine check CI runs
against the files ``--trace-out`` writes, and :func:`read_trace`
reassembles a snapshot-shaped dict for round-trip tests and offline
analysis.  Run as a script to validate files::

    PYTHONPATH=src python -m repro.obs run.jsonl [more.jsonl ...]
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, Iterator

from .telemetry import SCHEMA_VERSION

#: The event types a valid trace may contain.  ``access`` lines are the
#: serving tier's structured access log — one per HTTP request — written
#: through the same schema-versioned writer so one validator gates both.
EVENT_TYPES = ("meta", "span", "counter", "gauge", "histogram", "access")


def trace_events(snapshot: dict) -> Iterator[dict]:
    """Flatten one telemetry snapshot into trace events, meta first."""
    yield {
        "v": SCHEMA_VERSION,
        "type": "meta",
        "schema": snapshot.get("schema", SCHEMA_VERSION),
        "spans": len(snapshot.get("spans", [])),
        "dropped_spans": snapshot.get("dropped_spans", 0),
        "counters": len(snapshot.get("counters", {})),
        "histograms": len(snapshot.get("histograms", {})),
    }
    for span in snapshot.get("spans", []):
        yield {"v": SCHEMA_VERSION, "type": "span", **span}
    for name, value in snapshot.get("counters", {}).items():
        yield {
            "v": SCHEMA_VERSION, "type": "counter",
            "name": name, "value": value,
        }
    for name, value in snapshot.get("gauges", {}).items():
        yield {
            "v": SCHEMA_VERSION, "type": "gauge",
            "name": name, "value": value,
        }
    for name, payload in snapshot.get("histograms", {}).items():
        yield {
            "v": SCHEMA_VERSION, "type": "histogram",
            "name": name, **payload,
        }


def write_trace(snapshot: dict, destination: str | IO[str]) -> int:
    """Write a snapshot as a JSONL trace; returns the event count."""
    own = isinstance(destination, str)
    fh = open(destination, "w", encoding="utf-8") if own else destination
    try:
        count = 0
        for event in trace_events(snapshot):
            fh.write(json.dumps(event, sort_keys=True, allow_nan=True))
            fh.write("\n")
            count += 1
        return count
    finally:
        if own:
            fh.close()


def read_trace(source: str | IO[str]) -> dict:
    """Reassemble a snapshot-shaped dict from a JSONL trace file.

    The inverse of :func:`write_trace` up to key order: counters,
    gauges, histograms and spans round-trip exactly; ``span_stats`` is
    recomputed from the spans.
    """
    own = isinstance(source, str)
    fh = open(source, "r", encoding="utf-8") if own else source
    try:
        snapshot: dict = {
            "schema": SCHEMA_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": [],
            "span_stats": {},
            "dropped_spans": 0,
        }
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.get("type")
            if kind == "meta":
                snapshot["schema"] = event.get("schema", SCHEMA_VERSION)
                snapshot["dropped_spans"] = event.get("dropped_spans", 0)
            elif kind == "span":
                snapshot["spans"].append(
                    {
                        "name": event["name"],
                        "path": event["path"],
                        "start": event["start"],
                        "duration": event["duration"],
                        "status": event.get("status", "ok"),
                        "attrs": event.get("attrs", {}),
                    }
                )
            elif kind == "counter":
                snapshot["counters"][event["name"]] = event["value"]
            elif kind == "gauge":
                snapshot["gauges"][event["name"]] = event["value"]
            elif kind == "histogram":
                snapshot["histograms"][event["name"]] = {
                    "bounds": event["bounds"],
                    "counts": event["counts"],
                    "count": event["count"],
                    "sum": event["sum"],
                    "min": event.get("min"),
                    "max": event.get("max"),
                }
        for span in snapshot["spans"]:
            stats = snapshot["span_stats"].setdefault(
                span["path"],
                {"count": 0, "total_seconds": 0.0, "errors": 0},
            )
            stats["count"] += 1
            stats["total_seconds"] += span["duration"]
            if span["status"] != "ok":
                stats["errors"] += 1
        return snapshot
    finally:
        if own:
            fh.close()


def validate_trace_lines(lines: Iterable[str]) -> list[str]:
    """Schema-check a trace; returns human-readable problems (empty = ok).

    The contract checked here is what CI's telemetry smoke step gates
    on: a meta line first, every line a versioned event of a known
    type, span paths consistent with their names, histogram bucket
    arithmetic internally consistent.
    """
    problems: list[str] = []
    saw_meta = False
    for number, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(event, dict):
            problems.append(f"line {number}: not a JSON object")
            continue
        if event.get("v") != SCHEMA_VERSION:
            problems.append(
                f"line {number}: schema version {event.get('v')!r} "
                f"!= {SCHEMA_VERSION}"
            )
        kind = event.get("type")
        if kind not in EVENT_TYPES:
            problems.append(f"line {number}: unknown event type {kind!r}")
            continue
        if number == 1 and kind != "meta":
            problems.append("line 1: trace must start with a meta event")
        if kind == "meta":
            saw_meta = True
        elif kind == "span":
            for key in ("name", "path", "start", "duration"):
                if key not in event:
                    problems.append(f"line {number}: span missing {key!r}")
            if "path" in event and "name" in event:
                path, name = event["path"], event["name"]
                if path != name and not path.endswith(f"/{name}"):
                    problems.append(
                        f"line {number}: span path {path!r} does not end "
                        f"with name {name!r}"
                    )
            if event.get("duration", 0) < 0 or event.get("start", 0) < 0:
                problems.append(f"line {number}: negative span timing")
            if event.get("status", "ok") not in ("ok", "error"):
                problems.append(
                    f"line {number}: bad span status "
                    f"{event.get('status')!r}"
                )
        elif kind in ("counter", "gauge"):
            if "name" not in event or "value" not in event:
                problems.append(f"line {number}: {kind} missing name/value")
            elif kind == "counter" and (
                not isinstance(event["value"], int) or event["value"] < 0
            ):
                problems.append(
                    f"line {number}: counter value must be a "
                    f"non-negative integer"
                )
        elif kind == "access":
            request_id = event.get("request_id")
            if not isinstance(request_id, str) or not request_id:
                problems.append(
                    f"line {number}: access event needs a non-empty "
                    f"string request_id"
                )
            if not isinstance(event.get("status"), int):
                problems.append(
                    f"line {number}: access status must be an integer"
                )
            latency = event.get("latency_seconds")
            if (
                not isinstance(latency, (int, float))
                or isinstance(latency, bool)
                or latency < 0
            ):
                problems.append(
                    f"line {number}: access latency_seconds must be a "
                    f"non-negative number"
                )
        elif kind == "histogram":
            for key in ("name", "bounds", "counts", "count", "sum"):
                if key not in event:
                    problems.append(
                        f"line {number}: histogram missing {key!r}"
                    )
            bounds = event.get("bounds", [])
            counts = event.get("counts", [])
            if len(counts) != len(bounds) + 1:
                problems.append(
                    f"line {number}: histogram needs len(bounds)+1 "
                    f"buckets, got {len(counts)} for {len(bounds)} bounds"
                )
            if sum(counts) != event.get("count"):
                problems.append(
                    f"line {number}: histogram bucket sum "
                    f"{sum(counts)} != count {event.get('count')}"
                )
            if list(bounds) != sorted(bounds):
                problems.append(f"line {number}: histogram bounds unsorted")
    if not saw_meta:
        problems.append("trace has no meta event")
    return problems


class AccessLogWriter:
    """Schema-versioned JSONL access log: one line per HTTP request.

    The serving tier's flight-data stream — every request lands as an
    ``access`` event (id, route, status, latency, candidate counts,
    cache hit, snapshot version ...), after a leading ``meta`` line so
    the standard :func:`validate_trace_lines` gate accepts the file
    as-is.  Writes are line-buffered under a lock (handler threads log
    concurrently) and flushed per line so a killed server loses at most
    the line being written.
    """

    def __init__(self, destination: str | IO[str]):
        self._own = isinstance(destination, str)
        self._fh = (
            open(destination, "w", encoding="utf-8")
            if self._own
            else destination
        )
        self._lock = threading.Lock()
        self.lines = 0
        self._write(
            {
                "v": SCHEMA_VERSION,
                "type": "meta",
                "schema": SCHEMA_VERSION,
                "stream": "access-log",
            }
        )

    def _write(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, allow_nan=True)
        with self._lock:
            self._fh.write(line)
            self._fh.write("\n")
            self._fh.flush()
            self.lines += 1

    def log(
        self,
        request_id: str,
        route: str,
        status: int,
        latency_seconds: float,
        **attrs: object,
    ) -> None:
        """Append one request's access line."""
        self._write(
            {
                "v": SCHEMA_VERSION,
                "type": "access",
                "request_id": request_id,
                "route": route,
                "status": status,
                "latency_seconds": latency_seconds,
                **attrs,
            }
        )

    def close(self) -> None:
        if self._own:
            self._fh.close()

    def __enter__(self) -> "AccessLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def validate_trace_file(path: str) -> list[str]:
    """:func:`validate_trace_lines` over a file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_trace_lines(fh)


def main(argv: list[str] | None = None) -> int:
    """Validate trace files; exit 0 when all pass (the CI smoke gate)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="validate repro telemetry JSONL traces"
    )
    parser.add_argument("paths", nargs="+", help="trace files to check")
    args = parser.parse_args(argv)
    failed = False
    for path in args.paths:
        problems = validate_trace_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())

"""Zero-dependency observability: telemetry registry + JSONL trace sink.

``repro.obs`` sits below every other layer (it imports nothing from the
rest of the package) and gives the pipeline one shared language for
"what happened and how long did it take": counters, gauges,
fixed-bucket histograms and hierarchical tracing spans, aggregated
process-locally and merged across ProcessPool workers.  See
:mod:`repro.obs.telemetry` for the registry,
:mod:`repro.obs.sink` for the ``--trace-out`` JSONL schema and the
structured access log, :mod:`repro.obs.expo` for Prometheus text
exposition, :mod:`repro.obs.slo` for sliding-window SLO tracking and
:mod:`repro.obs.flightrec` for the slow-query flight recorder.
"""

from .expo import (
    parse_prometheus_text,
    prometheus_name,
    render_prometheus,
    sample_value,
)
from .flightrec import FlightRecord, FlightRecorder, spans_for_request
from .sink import (
    EVENT_TYPES,
    AccessLogWriter,
    read_trace,
    trace_events,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from .slo import DEFAULT_WINDOWS, SLOConfig, SLOTracker, nearest_rank
from .telemetry import (
    DEFAULT_LATENCY_BOUNDS,
    SCHEMA_VERSION,
    Histogram,
    RequestContext,
    Span,
    SpanRecord,
    Telemetry,
    current_request,
    get_telemetry,
    set_request,
    set_telemetry,
    use_request,
    use_telemetry,
    walk_span_tree,
)

__all__ = [
    "AccessLogWriter",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_WINDOWS",
    "EVENT_TYPES",
    "FlightRecord",
    "FlightRecorder",
    "Histogram",
    "RequestContext",
    "SCHEMA_VERSION",
    "SLOConfig",
    "SLOTracker",
    "Span",
    "SpanRecord",
    "Telemetry",
    "current_request",
    "get_telemetry",
    "nearest_rank",
    "parse_prometheus_text",
    "prometheus_name",
    "read_trace",
    "render_prometheus",
    "sample_value",
    "set_request",
    "set_telemetry",
    "spans_for_request",
    "trace_events",
    "use_request",
    "use_telemetry",
    "validate_trace_file",
    "validate_trace_lines",
    "walk_span_tree",
    "write_trace",
]

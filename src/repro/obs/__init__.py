"""Zero-dependency observability: telemetry registry + JSONL trace sink.

``repro.obs`` sits below every other layer (it imports nothing from the
rest of the package) and gives the pipeline one shared language for
"what happened and how long did it take": counters, gauges,
fixed-bucket histograms and hierarchical tracing spans, aggregated
process-locally and merged across ProcessPool workers.  See
:mod:`repro.obs.telemetry` for the registry and
:mod:`repro.obs.sink` for the ``--trace-out`` JSONL schema.
"""

from .sink import (
    EVENT_TYPES,
    read_trace,
    trace_events,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from .telemetry import (
    DEFAULT_LATENCY_BOUNDS,
    SCHEMA_VERSION,
    Histogram,
    Span,
    SpanRecord,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
    walk_span_tree,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "EVENT_TYPES",
    "Histogram",
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "Telemetry",
    "get_telemetry",
    "read_trace",
    "set_telemetry",
    "trace_events",
    "use_telemetry",
    "validate_trace_file",
    "validate_trace_lines",
    "walk_span_tree",
    "write_trace",
]

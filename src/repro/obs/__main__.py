"""``python -m repro.obs trace.jsonl [...]`` — validate JSONL traces."""

from .sink import main

if __name__ == "__main__":
    raise SystemExit(main())

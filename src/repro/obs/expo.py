"""Prometheus text exposition for one telemetry snapshot.

The serving tier's ``/metrics`` endpoint renders the shared
:class:`~repro.obs.telemetry.Telemetry` snapshot in the Prometheus
text format (version 0.0.4) so any off-the-shelf scraper can watch the
portal without the repo growing a client-library dependency::

    # TYPE repro_http_requests_total counter
    repro_http_requests_total 42
    # TYPE repro_http_request_seconds histogram
    repro_http_request_seconds_bucket{le="0.0005"} 3
    ...
    repro_http_request_seconds_bucket{le="+Inf"} 42
    repro_http_request_seconds_sum 0.193
    repro_http_request_seconds_count 42

Mapping rules, all deterministic:

* dotted telemetry names become underscore-separated metric names under
  a ``repro_`` prefix (``http.status.200`` -> ``repro_http_status_200``);
  any character outside ``[a-zA-Z0-9_]`` is replaced by ``_``,
* counters get the conventional ``_total`` suffix,
* gauges are emitted as-is,
* histograms expand to **cumulative** ``_bucket`` lines (one per upper
  bound plus the mandatory ``le="+Inf"``), a ``_sum`` and a ``_count``
  — straight from the fixed-bucket histogram's exported counts, so the
  exposition and the JSONL trace always agree.

:func:`parse_prometheus_text` is the matching tiny parser: CI scrapes
``/metrics`` during the serve smoke and round-trips the body through
it, and the scrape-consistency tests use it to assert histogram
``_count`` equals ``repro_http_requests_total`` at quiescence.

Like everything in ``repro.obs`` this module imports nothing from the
rest of the package.
"""

from __future__ import annotations

import re

#: Every exported metric name starts with this.
METRIC_PREFIX = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")
#: One exposition line: ``name{labels} value`` with optional labels.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prometheus_name(name: str, suffix: str = "") -> str:
    """A telemetry name as a valid prefixed Prometheus metric name."""
    return METRIC_PREFIX + _INVALID_CHARS.sub("_", name) + suffix


def _format_value(value: float | int) -> str:
    """Render a sample value; integers without a trailing ``.0``."""
    if isinstance(value, bool):  # bools are ints; never expected, but
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """An ``le`` label value: the histogram's own bound, verbatim."""
    return _format_value(bound)


def render_prometheus(snapshot: dict) -> str:
    """One telemetry snapshot as a Prometheus text-format page.

    Families are emitted in sorted name order (counters, then gauges,
    then histograms) so two snapshots with the same contents render
    byte-identically.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = prometheus_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_bound(bound)}"}} '
                f"{cumulative}"
            )
        # The overflow bucket: everything, by definition.
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {payload["count"]}'
        )
        lines.append(f"{metric}_sum {_format_value(payload['sum'])}")
        lines.append(f"{metric}_count {payload['count']}")
    lines.append("")  # text format ends with a newline
    return "\n".join(lines)


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse a text-format page back into families (the CI round-trip).

    Returns ``{family_name: {"type": str | None, "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Histogram families
    are keyed by their base name; their ``_bucket``/``_sum``/``_count``
    samples all land in the one family, mirroring how Prometheus itself
    groups them.  Raises :class:`ValueError` on any malformed line, so
    a truncated or interleaved scrape fails loudly in CI.
    """
    families: dict[str, dict] = {}
    declared: dict[str, str] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": []}
                )
            # other comments (HELP, free text) are legal and ignored
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(raw_labels):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            leftover = raw_labels[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(
                    f"line {number}: malformed labels {raw_labels!r}"
                )
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {number}: bad sample value {raw_value!r}"
            ) from exc
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) == "histogram":
                family = base
                break
        entry = families.setdefault(
            family, {"type": declared.get(family), "samples": []}
        )
        entry["samples"].append((name, labels, value))
    for family, entry in families.items():
        if entry["type"] == "histogram":
            counts = [
                value
                for name, labels, value in entry["samples"]
                if name == family + "_count"
            ]
            infs = [
                value
                for name, labels, value in entry["samples"]
                if name == family + "_bucket" and labels.get("le") == "+Inf"
            ]
            if not counts or not infs:
                raise ValueError(
                    f"histogram {family}: missing _count or +Inf bucket"
                )
            if counts[0] != infs[0]:
                raise ValueError(
                    f"histogram {family}: _count {counts[0]} != "
                    f'+Inf bucket {infs[0]}'
                )
    return families


def sample_value(
    families: dict[str, dict], name: str, labels: dict[str, str] | None = None
) -> float | None:
    """Convenience lookup for one sample in parsed families."""
    wanted = labels or {}
    for entry in families.values():
        for sample_name, sample_labels, value in entry["samples"]:
            if sample_name == name and sample_labels == wanted:
                return value
    return None

"""The process-local telemetry registry: counters, gauges, histograms, spans.

The wrangling loop is "run & rerun until the catalog converges", and the
fast paths added along the way — query caching, parallel ingest, retry,
quarantine — are invisible unless something counts how often they fire
and where a slow wrangle spent its time.  :class:`Telemetry` is that
something: a zero-dependency, process-local registry of

* **counters** — monotonically increasing event totals
  (``scan.quarantined``, ``search.cache_hits``),
* **gauges** — last-written values (``catalog.size``),
* **histograms** — fixed-bucket latency distributions
  (``search.query_seconds``), mergeable because the bucket bounds are
  part of the data, and
* **spans** — hierarchical timed regions (``wrangle`` →
  ``scan-archive`` → ``scan.extract``) with a context-manager API,
  monotonic-clock timing and per-span attributes.

Design constraints, in order:

1. **Near-zero cost when off.**  The module-level default telemetry is
   *disabled*: every ``count``/``observe`` is one attribute check, and
   spans skip the record path entirely (they still measure their own
   duration, so callers that report timings have exactly one timing
   source whether telemetry is on or off).
2. **Thread-safe.**  All mutation happens under one lock; the active
   span stack is thread-local, so spans opened on different threads
   nest independently.
3. **Process-mergeable.**  ProcessPool scan workers cannot share the
   parent's registry, so a worker builds its own, exports it as plain
   picklable dicts (:meth:`Telemetry.export`) and the parent folds it
   back in (:meth:`Telemetry.merge_worker`), re-parenting the worker's
   span tree under the parent's active span.  Counter totals after a
   parallel scan equal a serial scan's by construction: both paths run
   the identical traced unit and merge the identical export.

Nothing in this module imports from the rest of the package; every
layer above may import it freely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Version of the snapshot / trace-event schema.  Bump on any change to
#: the shape of :meth:`Telemetry.snapshot` or the JSONL events derived
#: from it.
SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds, in seconds — tuned for the
#: pipeline's range: sub-millisecond cache hits up to multi-second cold
#: wrangles.  The last (overflow) bucket is implicit.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    Buckets are defined by their sorted upper bounds; one overflow
    bucket catches everything above the last bound.  Keeping the bounds
    in the data makes histograms mergeable across processes (the merge
    refuses mismatched bounds rather than silently re-bucketing).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty sorted sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        # Linear scan: bucket lists are short (~15) and observations on
        # the hot path are per-batch or per-query, not per-row.
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or its exported dict) into this one."""
        if isinstance(other, dict):
            merged = Histogram.from_dict(other)
        else:
            merged = other
        if merged.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(merged.counts):
            self.counts[i] += n
        self.count += merged.count
        self.sum += merged.sum
        if merged.count:
            self.min = min(self.min, merged.min)
            self.max = max(self.max, merged.max)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-quantile (``p`` in [0, 1]) by linear
        interpolation within the containing bucket.

        Exact at the recorded min/max; 0.0 when empty.  Values landing
        in the overflow bucket report the recorded maximum.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = p * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= target and n:
                if i >= len(self.bounds):
                    return self.max
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                inside = (target - (cumulative - n)) / n
                estimate = lower + inside * (upper - lower)
                return min(max(estimate, self.min), self.max)
        return self.max

    def to_dict(self) -> dict:
        """A picklable/JSON-able export of the full histogram state."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(tuple(payload["bounds"]))
        hist.counts = list(payload["counts"])
        hist.count = payload["count"]
        hist.sum = payload["sum"]
        if hist.count:
            hist.min = payload["min"]
            hist.max = payload["max"]
        return hist


def _coerce_attr(value: Any) -> Any:
    """Span attributes must survive pickling and JSON encoding."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(slots=True)
class RequestContext:
    """One served request's identity, carried alongside the telemetry.

    The serving layer creates one context per request (a deterministic
    ``req-NNNNNN`` id from a per-server counter) and activates it with
    :func:`use_request`.  While a context is active on a thread, every
    span and event recorded there is stamped with the request id — so
    one request's spans can be picked back out of the shared registry
    (the flight recorder does exactly this) even though many requests
    write into it concurrently.

    ``attrs`` is the request-scoped scratchpad: layers that know
    something about the request (the engine knows the candidate counts
    and whether the cache hit; the service knows the snapshot version)
    :meth:`annotate` it, and the access log reads it all back at the
    end without any layer having to thread fields through its return
    types.
    """

    request_id: str
    attrs: dict = field(default_factory=dict)

    def annotate(self, **attrs: Any) -> None:
        """Attach request-scoped facts (coerced to JSON-safe scalars)."""
        for key, value in attrs.items():
            self.attrs[key] = _coerce_attr(value)


#: The active request context is per-thread, exactly like the active
#: telemetry registry: request threads never share a context, and
#: fan-out code (scoring shards, pool workers) re-activates the parent
#: request's context explicitly.
_active_request = threading.local()


def current_request() -> RequestContext | None:
    """This thread's active request context, if any."""
    return getattr(_active_request, "value", None)


def set_request(context: RequestContext | None) -> RequestContext | None:
    """Make ``context`` active on this thread; returns the previous one."""
    previous = current_request()
    _active_request.value = context
    return previous


class use_request:
    """Context manager: activate a request context, restore on exit."""

    __slots__ = ("_context", "_previous")

    def __init__(self, context: RequestContext | None):
        self._context = context
        self._previous: RequestContext | None = None

    def __enter__(self) -> RequestContext | None:
        self._previous = set_request(self._context)
        return self._context

    def __exit__(self, *exc_info: object) -> None:
        set_request(self._previous)


@dataclass(slots=True)
class SpanRecord:
    """One completed span: what ran, where in the tree, for how long."""

    name: str
    #: Slash-joined ancestry, e.g. ``wrangle/scan-archive/scan.extract``.
    path: str
    #: Start offset in seconds since the registry's creation (monotonic
    #: clock).  Worker-merged spans keep their worker-relative offsets.
    start: float
    duration: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            path=payload["path"],
            start=payload["start"],
            duration=payload["duration"],
            status=payload.get("status", "ok"),
            attrs=dict(payload.get("attrs", {})),
        )


class Span:
    """A timed region; use as a context manager.

    Always measures its own duration (monotonic clock) so callers can
    read ``span.duration`` whether or not the registry records it —
    this is what lets component reports and ``--timings`` share one
    timing source.  An exception escaping the body marks the span
    ``status="error"`` and records the exception type before
    propagating.
    """

    __slots__ = (
        "_telemetry", "name", "attrs", "path", "start",
        "duration", "status", "_began", "_entered",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict):
        self._telemetry = telemetry
        self.name = name
        self.attrs = {k: _coerce_attr(v) for k, v in attrs.items()}
        self.path = name
        self.start = 0.0
        self.duration = 0.0
        self.status = "ok"
        self._began = 0.0
        self._entered = False

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = _coerce_attr(value)

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        if telemetry.enabled:
            stack = telemetry._span_stack()
            self.path = (
                f"{stack[-1]}/{self.name}" if stack else self.name
            )
            stack.append(self.path)
            self._entered = True
            self.start = time.monotonic() - telemetry._t0
            context = current_request()
            if context is not None:
                self.attrs.setdefault("request_id", context.request_id)
        self._began = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.monotonic() - self._began
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("exception", exc_type.__name__)
        if self._entered:
            stack = self._telemetry._span_stack()
            if stack and stack[-1] == self.path:
                stack.pop()
            self._telemetry._record_span(
                SpanRecord(
                    name=self.name,
                    path=self.path,
                    start=self.start,
                    duration=self.duration,
                    status=self.status,
                    attrs=self.attrs,
                )
            )
        # Exceptions always propagate.


class _Parented:
    """Pushes a borrowed parent path onto this thread's span stack."""

    __slots__ = ("_telemetry", "_path", "_pushed")

    def __init__(self, telemetry: "Telemetry", path: str | None):
        self._telemetry = telemetry
        self._path = path
        self._pushed = False

    def __enter__(self) -> "_Parented":
        if self._path is not None and self._telemetry.enabled:
            self._telemetry._span_stack().append(self._path)
            self._pushed = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._pushed:
            stack = self._telemetry._span_stack()
            if stack and stack[-1] == self._path:
                stack.pop()


class Telemetry:
    """The registry one run's instrumentation writes into.

    Create one per logical run (a :class:`~repro.system.DataNearHere`
    owns one for its lifetime), activate it with :func:`use_telemetry`,
    and read it back with :meth:`snapshot`.  All methods are safe to
    call from multiple threads; cross-process aggregation goes through
    :meth:`export` / :meth:`merge_worker`.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 10_000):
        self.enabled = enabled
        #: Raw span records are bounded so a pathological run (millions
        #: of quarantine events) degrades to dropped records, not OOM.
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: list[SpanRecord] = []
        self.dropped_spans = 0
        self._t0 = time.monotonic()
        self._local = threading.local()

    # -- span plumbing ------------------------------------------------------

    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def active_path(self) -> str | None:
        """The path of the innermost open span on this thread, if any."""
        stack = self._span_stack()
        return stack[-1] if stack else None

    def parented(self, path: str | None) -> "_Parented":
        """Adopt ``path`` as this thread's span parent for a block.

        Fan-out code (scoring shard threads) captures the submitting
        thread's :meth:`active_path` and re-establishes it inside the
        worker, so spans opened there nest under the request span
        instead of starting a disconnected root tree.  ``None`` is a
        no-op, which lets callers pass ``active_path()`` through
        unconditionally.
        """
        return _Parented(self, path)

    def _record_span(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            self._spans.append(record)

    # -- the instrumentation API --------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A context-managed timed region nested under the active span."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) span.

        Used for point occurrences that belong in the trace — a file
        quarantined, a publish deferred — where wrapping a region makes
        no sense.
        """
        if not self.enabled:
            return
        stack = self._span_stack()
        path = f"{stack[-1]}/{name}" if stack else name
        coerced = {k: _coerce_attr(v) for k, v in attrs.items()}
        context = current_request()
        if context is not None:
            coerced.setdefault("request_id", context.request_id)
        self._record_span(
            SpanRecord(
                name=name,
                path=path,
                start=time.monotonic() - self._t0,
                duration=0.0,
                attrs=coerced,
            )
        )

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ) -> None:
        """Record ``value`` into the histogram ``name``.

        ``bounds`` applies only when the histogram is first created;
        later observations reuse the existing buckets.
        """
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(bounds)
                self._histograms[name] = hist
            hist.observe(value)

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        """The live histogram object for ``name``, if any observations."""
        with self._lock:
            return self._histograms.get(name)

    # -- cross-process aggregation ------------------------------------------

    def export(self) -> dict:
        """The registry as plain picklable dicts (a worker's return)."""
        with self._lock:
            return {
                "schema": SCHEMA_VERSION,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self._histograms.items()
                },
                "spans": [record.to_dict() for record in self._spans],
                "dropped_spans": self.dropped_spans,
            }

    def merge_worker(self, export: dict) -> None:
        """Fold a worker's :meth:`export` into this registry.

        Counters and histogram buckets add; gauges take the worker's
        value (last write wins, same as local writes); the worker's
        span tree is re-parented under this thread's active span, so a
        chunk traced inside a worker shows up below ``scan.extract``
        exactly as a serially-traced chunk would.
        """
        if not self.enabled:
            return
        prefix = self.active_path()
        with self._lock:
            for name, value in export.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in export.get("gauges", {}).items():
                self._gauges[name] = value
            for name, payload in export.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = Histogram.from_dict(payload)
                else:
                    hist.merge(payload)
            for payload in export.get("spans", []):
                record = SpanRecord.from_dict(payload)
                if prefix:
                    record.path = f"{prefix}/{record.path}"
                if len(self._spans) >= self.max_spans:
                    self.dropped_spans += 1
                    continue
                self._spans.append(record)
            self.dropped_spans += export.get("dropped_spans", 0)

    # -- reading back --------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        """Completed span records, in completion order."""
        with self._lock:
            return list(self._spans)

    def snapshot(self) -> dict:
        """Everything recorded so far, as one JSON-able dict.

        The shape is the stable contract (``SCHEMA_VERSION``) shared by
        the JSONL sink, the text report and the benchmarks, so every
        surface shows the same numbers.  Keys are sorted for
        deterministic output under deterministic runs.
        """
        with self._lock:
            span_stats: dict[str, dict] = {}
            for record in self._spans:
                stats = span_stats.setdefault(
                    record.path,
                    {"count": 0, "total_seconds": 0.0, "errors": 0},
                )
                stats["count"] += 1
                stats["total_seconds"] += record.duration
                if record.status != "ok":
                    stats["errors"] += 1
            return {
                "schema": SCHEMA_VERSION,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
                "spans": [record.to_dict() for record in self._spans],
                "span_stats": dict(sorted(span_stats.items())),
                "dropped_spans": self.dropped_spans,
            }

    def reset(self) -> None:
        """Forget everything recorded (the registry stays usable)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self.dropped_spans = 0
            self._t0 = time.monotonic()


#: The module default: disabled, so un-opted-in library use pays one
#: ``enabled`` check per instrumentation call and records nothing.
_DISABLED = Telemetry(enabled=False)

#: The active registry is *per-thread*.  A concurrent serving layer runs
#: many requests at once, each wrapped in ``use_telemetry(...)``; were
#: the active slot a module global, request threads would race a
#: background wrangle's enter/exit and counters would land in the wrong
#: registry (or the global would be left pointing at a dead one after an
#: unlucky restore interleaving).  Thread-locality makes every
#: ``use_telemetry`` block private to its thread; code that fans work
#: out to *other* threads re-activates the parent's registry inside the
#: worker (see ``repro.serve``).
_active = threading.local()


def get_telemetry() -> Telemetry:
    """This thread's active registry (the disabled default if none)."""
    active = getattr(_active, "value", None)
    return active if active is not None else _DISABLED


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Make ``telemetry`` active on this thread; ``None`` restores the
    disabled default.

    Returns the previously active registry so callers can restore it.
    """
    previous = get_telemetry()
    _active.value = telemetry if telemetry is not None else None
    return previous


class use_telemetry:
    """Context manager: activate a registry, restore the previous on exit.

    Re-entrant — nested ``with use_telemetry(...)`` blocks stack
    correctly, which is what lets a worker swap in its private registry
    while the parent's stays untouched in other processes.
    """

    __slots__ = ("_telemetry", "_previous")

    def __init__(self, telemetry: Telemetry | None):
        self._telemetry = telemetry
        self._previous: Telemetry | None = None

    def __enter__(self) -> Telemetry:
        self._previous = set_telemetry(self._telemetry)
        return get_telemetry()

    def __exit__(self, *exc_info: object) -> None:
        set_telemetry(self._previous)


def walk_span_tree(
    snapshot: dict,
) -> Iterator[tuple[str, str, int, dict]]:
    """Yield ``(path, name, depth, stats)`` over a snapshot's span tree.

    Children are ordered by first completion, parents by the order their
    first descendant (or themselves) completed — i.e. execution order —
    so a rendered tree reads in the order the run actually happened.
    """
    order: list[str] = []
    seen: set[str] = set()
    for record in snapshot.get("spans", []):
        path = record["path"]
        parts = path.split("/")
        for depth in range(1, len(parts) + 1):
            ancestor = "/".join(parts[:depth])
            if ancestor not in seen:
                seen.add(ancestor)
                order.append(ancestor)
    children: dict[str | None, list[str]] = {}
    for path in order:
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        children.setdefault(parent, []).append(path)
    stats = snapshot.get("span_stats", {})

    def emit(path: str, depth: int):
        yield (
            path,
            path.rsplit("/", 1)[-1],
            depth,
            stats.get(path, {"count": 0, "total_seconds": 0.0, "errors": 0}),
        )
        for child in children.get(path, []):
            yield from emit(child, depth + 1)

    for root in children.get(None, []):
        yield from emit(root, 0)

"""Semantic-diversity machinery: one module per Table category plus the
combined resolver."""

from .abbreviations import (
    AbbreviationConflictError,
    AbbreviationTable,
    AcronymCandidate,
    acronym_candidates,
    looks_like_abbreviation,
    vocabulary_abbreviation_table,
)
from .ambiguity import (
    AmbiguityAction,
    AmbiguityDecision,
    AmbiguityFinding,
    analyze_ambiguity,
    is_ambiguous_form,
)
from .categories import CategoryRow, DiversityCategory, TABLE_ROWS, row_for
from .context import (
    PLATFORM_CONTEXT,
    ContextRules,
    UnknownContextError,
    default_context_rules,
)
from .exclusion import DEFAULT_EXCLUSION_PATTERNS, ExclusionPolicy
from .resolver import Resolution, ResolutionMethod, TermResolver
from .review import (
    LOW_CONFIDENCE_METHODS,
    ReviewItem,
    ReviewQueue,
    ReviewVerdict,
    queue_from_catalog,
)
from .spelling import MisspellingResolver, SpellingMatch
from .synonyms import (
    SynonymConflictError,
    SynonymTable,
    vocabulary_synonym_table,
)
from .units import (
    UnitConversion,
    UnitRegistry,
    UnknownUnitError,
    unit_normalization_mapping,
)

__all__ = [
    "AbbreviationConflictError",
    "AbbreviationTable",
    "AcronymCandidate",
    "AmbiguityAction",
    "AmbiguityDecision",
    "AmbiguityFinding",
    "CategoryRow",
    "ContextRules",
    "DEFAULT_EXCLUSION_PATTERNS",
    "DiversityCategory",
    "ExclusionPolicy",
    "MisspellingResolver",
    "PLATFORM_CONTEXT",
    "LOW_CONFIDENCE_METHODS",
    "Resolution",
    "ResolutionMethod",
    "ReviewItem",
    "ReviewQueue",
    "ReviewVerdict",
    "SpellingMatch",
    "SynonymConflictError",
    "SynonymTable",
    "TABLE_ROWS",
    "TermResolver",
    "UnitConversion",
    "UnitRegistry",
    "UnknownContextError",
    "UnknownUnitError",
    "acronym_candidates",
    "analyze_ambiguity",
    "default_context_rules",
    "is_ambiguous_form",
    "looks_like_abbreviation",
    "queue_from_catalog",
    "row_for",
    "unit_normalization_mapping",
    "vocabulary_abbreviation_table",
    "vocabulary_synonym_table",
]

"""The synonym table: preferred terms and their alternates.

The wrangling figure notes known transformations "often exist as a
translation table"; validation checks that "all harvested variable names
occur in the current synonym table as preferred or alternate terms".
:class:`SynonymTable` is that artifact: a curated mapping, serializable
as a two-column text file, that curators grow over iterations ("adding
entries to a synonym table").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..text import normalize_name


class SynonymConflictError(ValueError):
    """Raised when an alternate is claimed by two different preferreds."""


class SynonymTable:
    """A translation table: alternate spelling -> preferred term.

    Lookup is normalization-insensitive (``Air Temperature`` and
    ``air_temperature`` hit the same entry) but the stored spellings are
    preserved for display and serialization.
    """

    def __init__(self) -> None:
        self._preferred: dict[str, str] = {}  # norm(alternate) -> preferred
        self._alternates: dict[str, list[str]] = defaultdict(list)
        self._display: dict[str, str] = {}  # norm -> spelling as added

    # -- construction --------------------------------------------------------

    def add(self, preferred: str, alternate: str | None = None) -> None:
        """Register ``preferred``, optionally with one ``alternate``.

        Adding a preferred term alone makes the term self-resolving.

        Raises:
            SynonymConflictError: if the alternate already resolves to a
                *different* preferred term.
        """
        pref_key = normalize_name(preferred)
        existing = self._preferred.get(pref_key)
        if existing is not None and existing != preferred:
            raise SynonymConflictError(
                f"{preferred!r} already maps to {existing!r}"
            )
        self._preferred[pref_key] = preferred
        self._display.setdefault(pref_key, preferred)
        if alternate is None:
            return
        alt_key = normalize_name(alternate)
        current = self._preferred.get(alt_key)
        if current is not None and current != preferred:
            raise SynonymConflictError(
                f"alternate {alternate!r} already maps to {current!r}, "
                f"not {preferred!r}"
            )
        self._preferred[alt_key] = preferred
        self._display.setdefault(alt_key, alternate)
        if alternate not in self._alternates[preferred]:
            self._alternates[preferred].append(alternate)

    def add_many(
        self, preferred: str, alternates: Iterable[str]
    ) -> None:
        """Register several alternates of one preferred term."""
        self.add(preferred)
        for alternate in alternates:
            self.add(preferred, alternate)

    # -- lookup ---------------------------------------------------------------

    def resolve(self, name: str) -> str | None:
        """The preferred term for ``name``, or None when unknown."""
        return self._preferred.get(normalize_name(name))

    def contains(self, name: str) -> bool:
        """True when ``name`` occurs as preferred or alternate
        (the validation predicate from the poster)."""
        return normalize_name(name) in self._preferred

    def preferred_terms(self) -> list[str]:
        """Sorted distinct preferred terms."""
        return sorted(set(self._preferred.values()))

    def alternates_of(self, preferred: str) -> list[str]:
        """Alternates registered for ``preferred`` (insertion order)."""
        return list(self._alternates.get(preferred, ()))

    def __len__(self) -> int:
        """Number of known spellings (preferred + alternates)."""
        return len(self._preferred)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        """Yield ``(spelling_as_added, preferred)`` pairs, sorted."""
        for key in sorted(self._preferred):
            yield self._display[key], self._preferred[key]

    def as_mapping(self) -> dict[str, str]:
        """A plain alternate-spelling -> preferred dict (normalized keys
        replaced by the originally-added spellings)."""
        return {
            spelling: preferred
            for spelling, preferred in self
            if spelling != preferred
        }

    # -- serialization ---------------------------------------------------------

    def dumps(self) -> str:
        """Two-column text: ``alternate<TAB>preferred`` (self rows too)."""
        lines = ["# alternate\tpreferred"]
        for spelling, preferred in self:
            lines.append(f"{spelling}\t{preferred}")
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "SynonymTable":
        """Parse the format produced by :meth:`dumps`.

        Raises:
            ValueError: on rows without exactly two columns.
        """
        table = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(f"bad synonym row: {line!r}")
            alternate, preferred = parts
            if alternate == preferred:
                table.add(preferred)
            else:
                table.add(preferred, alternate)
        return table


def vocabulary_synonym_table(
    include_synonyms: bool = True,
    include_abbreviations: bool = True,
) -> SynonymTable:
    """The synonym table induced by the canonical vocabulary.

    Every canonical name self-resolves; listed synonyms and abbreviations
    resolve to it.  This is the 'known transformations' translation table
    that 'often exists' before wrangling begins — pass ``False`` flags to
    start from a *partial* table, as the curator-loop experiments do
    (curatorial activity 3: "adding entries to a synonym table").
    """
    from ..archive.vocabulary import VOCABULARY

    table = SynonymTable()
    for var in VOCABULARY.values():
        table.add(var.name)
        if include_synonyms:
            for synonym in var.synonyms:
                table.add(var.name, synonym)
        if include_abbreviations:
            for abbreviation in var.abbreviations:
                table.add(var.name, abbreviation)
    return table

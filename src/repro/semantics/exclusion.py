"""Excessive-variable marking (Table row 4).

QA and housekeeping variables (``qa_level``, ``qc_flag``, battery
voltage, sample counters) must be *marked* and *excluded from search*
while remaining visible in detailed dataset views.  Marking combines a
vocabulary flag (for resolved names) with name-pattern rules (for names
the resolver has not yet tamed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..archive.vocabulary import VOCABULARY

#: Default patterns over *normalized* names that indicate housekeeping
#: variables.  Curators extend this list per archive.
DEFAULT_EXCLUSION_PATTERNS: tuple[str, ...] = (
    r"(^|_)qa([_-]|$)",
    r"(^|_)qc([_-]|$)",
    r"(^|_)flag($|_)",
    r"battery",
    r"voltage",
    r"(^|_)tilt($|_)",
    r"sample_number",
    r"record_number",
    r"^serial",
    r"checksum",
)


@dataclass
class ExclusionPolicy:
    """Decides whether a variable name is auxiliary (search-excluded)."""

    patterns: list[str] = field(
        default_factory=lambda: list(DEFAULT_EXCLUSION_PATTERNS)
    )
    use_vocabulary: bool = True

    def __post_init__(self) -> None:
        self._compiled = [re.compile(p) for p in self.patterns]

    def add_pattern(self, pattern: str) -> None:
        """Register an additional exclusion regex (curator action).

        Raises:
            re.error: when the pattern does not compile.
        """
        self._compiled.append(re.compile(pattern))
        self.patterns.append(pattern)

    def is_auxiliary(self, name: str) -> bool:
        """True when ``name`` should be excluded from search."""
        if self.use_vocabulary:
            var = VOCABULARY.get(name)
            if var is not None:
                return var.auxiliary
        lowered = name.lower()
        return any(rx.search(lowered) for rx in self._compiled)

    def partition(self, names: list[str]) -> tuple[list[str], list[str]]:
        """Split names into ``(searchable, auxiliary)`` lists."""
        searchable: list[str] = []
        auxiliary: list[str] = []
        for name in names:
            (auxiliary if self.is_auxiliary(name) else searchable).append(
                name
            )
        return searchable, auxiliary

"""The paper's Table: categories of semantic diversity.

This module *is* Table 1 as data — each row with its example, desired
result and possible technical approach — so the T1 benchmark can
regenerate the table verbatim and attach measured resolution accuracy
per row.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DiversityCategory(str, Enum):
    """Stable keys for the seven rows (match the mess injector's labels)."""

    MISSPELLING = "misspelling"
    SYNONYM = "synonym"
    ABBREVIATION = "abbreviation"
    EXCESSIVE = "excessive"
    AMBIGUOUS = "ambiguous"
    CONTEXT = "context"
    MULTILEVEL = "multilevel"


@dataclass(frozen=True, slots=True)
class CategoryRow:
    """One row of the Table, verbatim from the poster."""

    category: DiversityCategory
    title: str
    example: str
    desired_result: str
    approach: str


TABLE_ROWS: tuple[CategoryRow, ...] = (
    CategoryRow(
        DiversityCategory.MISSPELLING,
        "Minor variations and misspellings",
        "air_temperature, air_temperatrue, airtemp",
        "Make them the same",
        "Translate current to desired name",
    ),
    CategoryRow(
        DiversityCategory.SYNONYM,
        "Synonyms",
        "C, degC, Centigrade",
        "Make them the same",
        "Translate current to desired name",
    ),
    CategoryRow(
        DiversityCategory.ABBREVIATION,
        "Abbreviations",
        "MWHLA",
        "Use full/canonical variable name",
        "Translate current to desired name",
    ),
    CategoryRow(
        DiversityCategory.EXCESSIVE,
        "Excessive variables",
        "Quality assurance variables: qa_level",
        "Exclude from search; show in detailed dataset views",
        "Mark variables; exclude from search",
    ),
    CategoryRow(
        DiversityCategory.AMBIGUOUS,
        "Ambiguous usages",
        "temp: temporary or temperature?",
        "Identify and expose variables; allow curator to clarify where "
        "possible, hide variable, or leave as is",
        "Provide interface to specify options",
    ),
    CategoryRow(
        DiversityCategory.CONTEXT,
        "Source-context naming variations",
        "Temperature: air_temperature or water_temperature depending on "
        "source context",
        "Specify context of variable; make context accessible to user",
        "Link to multiple taxonomies",
    ),
    CategoryRow(
        DiversityCategory.MULTILEVEL,
        "Concepts at multiple levels of detail",
        "Fluorescence, vs. fluores375, fluores400",
        "Collapse or expose as needed",
        "Allow variables to be grouped; support hierarchical menus",
    ),
)


def row_for(category: DiversityCategory | str) -> CategoryRow:
    """The Table row for a category key.

    Raises:
        KeyError: for unknown categories.
    """
    key = (
        category.value
        if isinstance(category, DiversityCategory)
        else category
    )
    for row in TABLE_ROWS:
        if row.category.value == key:
            return row
    raise KeyError(key)

"""Abbreviation expansion (Table row 3).

``MWHLA`` cannot be *discovered* — no string distance connects it to
"mean wave height, low-pass averaged".  The Table's approach is a
translation table; this module adds the machinery around one:

* :class:`AbbreviationTable` — curated abbreviation -> canonical name,
* :func:`acronym_candidates` — a heuristic that *proposes* expansions by
  matching an all-caps token against initial letters of vocabulary
  names, which the curator confirms (the poster's semi-curated blend).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..text import split_identifier


class AbbreviationConflictError(ValueError):
    """Raised when one abbreviation is bound to two canonical names."""


def looks_like_abbreviation(name: str) -> bool:
    """Heuristic: short, all-uppercase (in its alphabetic part) tokens.

    ``SST`` and ``MWHLA`` qualify; ``salinity`` and ``fluores375`` do not.
    """
    alpha = "".join(ch for ch in name if ch.isalpha())
    return 1 < len(alpha) <= 6 and alpha.isupper()


class AbbreviationTable:
    """Curated abbreviation -> canonical-name mapping (case-sensitive on
    display, case-insensitive on lookup)."""

    def __init__(self) -> None:
        self._entries: dict[str, str] = {}
        self._display: dict[str, str] = {}

    def add(self, abbreviation: str, canonical: str) -> None:
        """Register an expansion.

        Raises:
            AbbreviationConflictError: when rebinding to a different name.
        """
        key = abbreviation.lower()
        existing = self._entries.get(key)
        if existing is not None and existing != canonical:
            raise AbbreviationConflictError(
                f"{abbreviation!r} already expands to {existing!r}"
            )
        self._entries[key] = canonical
        self._display.setdefault(key, abbreviation)

    def expand(self, abbreviation: str) -> str | None:
        """Canonical name for ``abbreviation``, or None."""
        return self._entries.get(abbreviation.lower())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, abbreviation: str) -> bool:
        return abbreviation.lower() in self._entries

    def items(self) -> list[tuple[str, str]]:
        """Sorted ``(abbreviation, canonical)`` pairs."""
        return sorted(
            (self._display[key], canonical)
            for key, canonical in self._entries.items()
        )


@dataclass(frozen=True, slots=True)
class AcronymCandidate:
    """A proposed expansion for the curator to confirm."""

    abbreviation: str
    canonical: str
    matched_letters: int


def acronym_candidates(
    abbreviation: str, canonical_names: list[str]
) -> list[AcronymCandidate]:
    """Vocabulary names whose token initials are compatible with
    ``abbreviation``.

    A name is compatible when the abbreviation's letters appear in order
    as prefixes-of-tokens (so ``SST`` matches ``sea_surface_temperature``,
    ``WSPD`` matches ``wind_speed`` via w-s-p-d in 'wind speed').
    Sorted by match tightness (more matched token initials first).
    """
    letters = [ch for ch in abbreviation.lower() if ch.isalpha()]
    if not letters:
        return []
    out = []
    for name in canonical_names:
        tokens = split_identifier(name)
        if not tokens:
            continue
        initials = [tok[0] for tok in tokens]
        if _subsequence_of_initials(letters, tokens):
            matched = sum(
                1 for ch, init in zip(letters, initials) if ch == init
            )
            out.append(
                AcronymCandidate(
                    abbreviation=abbreviation,
                    canonical=name,
                    matched_letters=matched,
                )
            )
    out.sort(key=lambda c: (-c.matched_letters, c.canonical))
    return out


def _subsequence_of_initials(letters: list[str], tokens: list[str]) -> bool:
    """True when ``letters`` can be consumed, in order, by walking the
    tokens and taking each letter either as the next token's initial or a
    continuation inside the current token."""
    joined = "".join(tokens)
    # letters must be a subsequence of the joined tokens AND the first
    # letter must be the first token's initial.
    if letters[0] != tokens[0][0]:
        return False
    i = 0
    for ch in joined:
        if i < len(letters) and ch == letters[i]:
            i += 1
    return i == len(letters)


def vocabulary_abbreviation_table() -> AbbreviationTable:
    """The abbreviation table induced by the canonical vocabulary."""
    from ..archive.vocabulary import VOCABULARY

    table = AbbreviationTable()
    for var in VOCABULARY.values():
        for abbreviation in var.abbreviations:
            table.add(abbreviation, var.name)
    return table

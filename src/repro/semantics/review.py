"""The semi-curated review queue.

The abstract promises "a blend of automated and 'semi-curated' methods":
automated steps propose, the curator disposes.  Low-confidence
resolutions — fuzzy matches, evidence-based ambiguity clarifications —
land in a :class:`ReviewQueue`; the curator approves (the mapping is
learned into the synonym table, so future runs resolve it as a *known*
transformation) or rejects (the name reverts to unresolved and is never
re-proposed by the same method).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .resolver import Resolution, ResolutionMethod
from .synonyms import SynonymTable

#: Methods whose verdicts deserve a human glance before they ossify.
LOW_CONFIDENCE_METHODS = frozenset(
    {ResolutionMethod.FUZZY, ResolutionMethod.AMBIGUITY_EVIDENCE}
)


class ReviewVerdict(str, Enum):
    """The curator's call on one proposed resolution."""

    PENDING = "pending"
    APPROVED = "approved"
    REJECTED = "rejected"


@dataclass(slots=True)
class ReviewItem:
    """One queued proposal."""

    written: str
    proposed: str
    method: str
    note: str = ""
    occurrences: int = 1
    verdict: ReviewVerdict = ReviewVerdict.PENDING


class ReviewQueue:
    """Collects, dedupes and settles low-confidence proposals."""

    def __init__(self) -> None:
        self._items: dict[tuple[str, str], ReviewItem] = {}
        self._rejected: set[tuple[str, str]] = set()

    # -- intake ----------------------------------------------------------------

    def offer(self, resolution: Resolution) -> bool:
        """Queue a resolution when it needs review; returns True if taken.

        High-confidence methods pass through (False); rejected pairs are
        never re-queued; duplicate proposals bump the occurrence count.
        """
        if resolution.canonical is None:
            return False
        if resolution.method not in LOW_CONFIDENCE_METHODS:
            return False
        key = (resolution.written, resolution.canonical)
        if key in self._rejected:
            return False
        item = self._items.get(key)
        if item is not None:
            item.occurrences += 1
            return True
        self._items[key] = ReviewItem(
            written=resolution.written,
            proposed=resolution.canonical,
            method=resolution.method.value,
            note=resolution.note,
        )
        return True

    # -- disposal ---------------------------------------------------------------

    def pending(self) -> list[ReviewItem]:
        """Unsettled items, most-frequent first."""
        return sorted(
            (
                item
                for item in self._items.values()
                if item.verdict is ReviewVerdict.PENDING
            ),
            key=lambda i: (-i.occurrences, i.written),
        )

    def approve(
        self, written: str, proposed: str, synonyms: SynonymTable | None = None
    ) -> ReviewItem:
        """Approve a proposal; optionally learn it into a synonym table.

        Ambiguous short forms (``pres``, ``temp``) are approved for the
        *occurrence* that queued them but never learned as global
        synonyms — their meaning is context-dependent by definition, so
        a table entry would be wrong on the next platform.

        Raises:
            KeyError: when the pair is not queued.
        """
        from .ambiguity import is_ambiguous_form

        item = self._items[(written, proposed)]
        item.verdict = ReviewVerdict.APPROVED
        if synonyms is not None:
            if is_ambiguous_form(written):
                item.note = (
                    f"{item.note + '; ' if item.note else ''}"
                    "context-dependent, not learned as synonym"
                )
            else:
                synonyms.add(proposed, written)
        return item

    def reject(self, written: str, proposed: str) -> ReviewItem:
        """Reject a proposal; the pair will never be queued again.

        Raises:
            KeyError: when the pair is not queued.
        """
        item = self._items[(written, proposed)]
        item.verdict = ReviewVerdict.REJECTED
        self._rejected.add((written, proposed))
        return item

    def approve_all(self, synonyms: SynonymTable | None = None) -> int:
        """Approve every pending item (bulk curator action)."""
        count = 0
        for item in self.pending():
            self.approve(item.written, item.proposed, synonyms=synonyms)
            count += 1
        return count

    # -- reporting ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def counts(self) -> dict[str, int]:
        """verdict -> item count."""
        out = {v.value: 0 for v in ReviewVerdict}
        for item in self._items.values():
            out[item.verdict.value] += 1
        return out

    def render(self, limit: int = 20) -> str:
        """A terminal review list for the curator."""
        lines = ["review queue:"]
        for item in self.pending()[:limit]:
            lines.append(
                f"  {item.written!r} -> {item.proposed!r} "
                f"[{item.method}, x{item.occurrences}]"
                + (f" ({item.note})" if item.note else "")
            )
        if not self.pending():
            lines.append("  (empty)")
        return "\n".join(lines)


def queue_from_catalog(
    catalog, resolver, platform_by_dataset: dict[str, str] | None = None
) -> ReviewQueue:
    """Build a queue by re-resolving every written name in a catalog.

    ``platform_by_dataset`` defaults to each feature's stored platform.
    """
    queue = ReviewQueue()
    for feature in catalog:
        platform = (
            platform_by_dataset.get(feature.dataset_id, feature.platform)
            if platform_by_dataset is not None
            else feature.platform
        )
        for entry in feature.variables:
            # Re-resolve from the written form: that is what a fresh run
            # would propose.
            probe = entry.copy()
            probe.name = entry.written_name
            probe.unit = entry.written_unit
            resolution = resolver.resolve_entry(
                probe, platform, feature.dataset_id
            )
            queue.offer(resolution)
    return queue

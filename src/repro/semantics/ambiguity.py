"""Ambiguous-usage handling (Table row 5).

``temp`` may mean temporary *or* temperature.  The Table's desired
result: identify and expose such variables, then let the curator clarify
where possible, hide the variable, or leave it as is.  This module
detects ambiguous forms, proposes automatic clarifications where the
evidence (unit, value range, context) disambiguates, and records curator
decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..archive.vocabulary import AMBIGUOUS_FORMS, VOCABULARY, preferred_unit
from ..catalog.records import VariableEntry
from .context import ContextRules


class AmbiguityAction(str, Enum):
    """The curator's three options from the Table."""

    CLARIFY = "clarify"  # rename to a specific canonical
    HIDE = "hide"  # exclude from search
    LEAVE = "leave"  # keep as is, flagged


@dataclass(frozen=True, slots=True)
class AmbiguityDecision:
    """A curator decision for one ambiguous name in one dataset scope.

    ``scope`` is a dataset id, a directory prefix, or '' for global.
    """

    name: str
    action: AmbiguityAction
    canonical: str | None = None  # required for CLARIFY
    scope: str = ""

    def __post_init__(self) -> None:
        if self.action is AmbiguityAction.CLARIFY and not self.canonical:
            raise ValueError("CLARIFY decisions need a canonical name")

    def applies_to(self, dataset_id: str) -> bool:
        """True when this decision covers ``dataset_id``."""
        return not self.scope or dataset_id.startswith(self.scope)


@dataclass(frozen=True, slots=True)
class AmbiguityFinding:
    """One detected ambiguous variable, with candidate meanings."""

    dataset_id: str
    name: str
    candidates: tuple[str | None, ...]
    suggested: str | None  # auto-clarification when evidence suffices
    evidence: str


def is_ambiguous_form(name: str) -> bool:
    """True when ``name`` is a known ambiguous short form."""
    return name.lower() in AMBIGUOUS_FORMS


def _range_compatible(entry: VariableEntry, canonical: str) -> bool:
    from ..archive.generator import VALUE_RANGES

    bounds = VALUE_RANGES.get(canonical)
    if bounds is None or entry.count == 0:
        return False
    lo, hi = bounds
    span = hi - lo
    return (
        entry.minimum >= lo - 0.5 * span and entry.maximum <= hi + 0.5 * span
    )


def analyze_ambiguity(
    dataset_id: str,
    platform: str,
    entry: VariableEntry,
    context_rules: ContextRules | None = None,
) -> AmbiguityFinding | None:
    """Detect and (when evidence allows) auto-clarify one variable.

    Evidence order: unit string (a ``degC`` unit on ``temp`` rules out
    'temporary'), then platform context, then observed value range.
    Returns None when ``entry.name`` is not an ambiguous form.
    """
    form = entry.name.lower()
    candidates = AMBIGUOUS_FORMS.get(form)
    if candidates is None:
        return None
    context_rules = context_rules or ContextRules()
    context = context_rules.context_of_platform(platform)
    real = [c for c in candidates if c is not None]

    # 1. unit evidence: match the entry's (preferred) unit against each
    #    candidate's canonical unit.
    unit = preferred_unit(entry.written_unit or entry.unit)
    unit_hits = [
        c for c in real
        if c in VOCABULARY and VOCABULARY[c].unit == unit and unit != "1"
    ]
    if len(unit_hits) == 1 and None not in candidates:
        return AmbiguityFinding(
            dataset_id=dataset_id,
            name=entry.name,
            candidates=candidates,
            suggested=unit_hits[0],
            evidence=f"unit {unit!r} uniquely matches",
        )
    # Unit + context: a unit match plus platform context picks within
    # unit-compatible candidates even when a non-variable reading exists,
    # because a physical unit rules 'temporary' out.
    if unit_hits:
        context_hits = [
            c for c in unit_hits
            if c in VOCABULARY and VOCABULARY[c].context.value == context
        ]
        if len(context_hits) == 1:
            return AmbiguityFinding(
                dataset_id=dataset_id,
                name=entry.name,
                candidates=candidates,
                suggested=context_hits[0],
                evidence=f"unit {unit!r} + context {context!r}",
            )

    # 2. context evidence alone (only when no non-variable reading).
    if None not in candidates:
        context_hits = [
            c for c in real
            if c in VOCABULARY and VOCABULARY[c].context.value == context
        ]
        if len(context_hits) == 1:
            return AmbiguityFinding(
                dataset_id=dataset_id,
                name=entry.name,
                candidates=candidates,
                suggested=context_hits[0],
                evidence=f"context {context!r} uniquely matches",
            )

    # 3. value-range evidence: ranges that fit exactly one candidate.
    range_hits = [c for c in real if _range_compatible(entry, c)]
    if len(range_hits) == 1:
        # A dimensionless unit with a plausible physical range is weak
        # evidence when 'temporary' is on the table; still suggest, the
        # curator confirms.
        return AmbiguityFinding(
            dataset_id=dataset_id,
            name=entry.name,
            candidates=candidates,
            suggested=range_hits[0],
            evidence="observed range fits one candidate",
        )

    return AmbiguityFinding(
        dataset_id=dataset_id,
        name=entry.name,
        candidates=candidates,
        suggested=None,
        evidence="insufficient evidence",
    )

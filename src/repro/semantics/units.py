"""Unit normalization and conversion.

The Table's synonym row is about units (``C``/``degC``/``Centigrade``);
the abstract also notes "similar problems in other areas, e.g. units".
Normalization maps any known spelling to the preferred one; conversion
handles the deeper case where two sources report the same variable in
*different* units (degF vs degC, mg/L vs uM oxygen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..archive.vocabulary import UNIT_SYNONYMS, preferred_unit


class UnknownUnitError(KeyError):
    """Raised when a conversion between two units is not registered."""


@dataclass(frozen=True, slots=True)
class UnitConversion:
    """A linear (or callable) conversion between two preferred units."""

    source: str
    target: str
    convert: Callable[[float], float]


def _linear(scale: float, offset: float = 0.0) -> Callable[[float], float]:
    return lambda x: x * scale + offset


class UnitRegistry:
    """Normalization plus a conversion graph over preferred units."""

    def __init__(self) -> None:
        self._conversions: dict[tuple[str, str], UnitConversion] = {}
        for conversion in _DEFAULT_CONVERSIONS:
            self.register(conversion)

    def normalize(self, unit: str) -> str:
        """Preferred spelling for ``unit`` (unknown spellings unchanged)."""
        return preferred_unit(unit)

    def is_known(self, unit: str) -> bool:
        """True when ``unit`` (any spelling) belongs to a known family."""
        normalized = self.normalize(unit)
        return normalized in UNIT_SYNONYMS

    def same_family(self, a: str, b: str) -> bool:
        """True when two spellings normalize to the same preferred unit."""
        return self.normalize(a) == self.normalize(b)

    def register(self, conversion: UnitConversion) -> None:
        """Add a conversion (its inverse is NOT derived automatically)."""
        self._conversions[(conversion.source, conversion.target)] = conversion

    def convert(self, value: float, source: str, target: str) -> float:
        """Convert ``value`` from ``source`` to ``target`` units.

        Spellings are normalized first; same-family conversion is
        identity.

        Raises:
            UnknownUnitError: when no conversion path is registered.
        """
        src = self.normalize(source)
        dst = self.normalize(target)
        if src == dst:
            return value
        conversion = self._conversions.get((src, dst))
        if conversion is None:
            raise UnknownUnitError(f"{source!r} -> {target!r}")
        return conversion.convert(value)

    def convertible(self, source: str, target: str) -> bool:
        """True when :meth:`convert` would succeed."""
        src = self.normalize(source)
        dst = self.normalize(target)
        return src == dst or (src, dst) in self._conversions


_DEFAULT_CONVERSIONS: tuple[UnitConversion, ...] = (
    UnitConversion("degF", "degC", _linear(5.0 / 9.0, -160.0 / 9.0)),
    UnitConversion("degC", "degF", _linear(9.0 / 5.0, 32.0)),
    UnitConversion("K", "degC", _linear(1.0, -273.15)),
    UnitConversion("degC", "K", _linear(1.0, 273.15)),
    # Dissolved oxygen: 1 mg/L = 31.2512 uM (O2 molar mass 31.998 g/mol
    # ... 1000/31.998 umol per mg).
    UnitConversion("mg/L", "uM", _linear(1000.0 / 31.998)),
    UnitConversion("uM", "mg/L", _linear(31.998 / 1000.0)),
    UnitConversion("dbar", "hPa", _linear(100.0)),
    UnitConversion("hPa", "dbar", _linear(0.01)),
    UnitConversion("m", "mm", _linear(1000.0)),
    UnitConversion("mm", "m", _linear(0.001)),
    UnitConversion("knots", "m/s", _linear(0.514444)),
    UnitConversion("m/s", "knots", _linear(1.0 / 0.514444)),
)


def unit_normalization_mapping(units_in_use: list[str]) -> dict[str, str]:
    """Spelling -> preferred mapping for the unit strings actually seen
    in a catalog (identity entries dropped)."""
    out = {}
    for unit in units_in_use:
        normalized = preferred_unit(unit)
        if normalized != unit:
            out[unit] = normalized
    return out

"""Misspelling resolution (Table row 1).

Given names that no translation table recognizes, find the canonical
vocabulary term they are a "minor variation or misspelling" of.  Two
complementary signals, mirroring how a curator uses Google Refine:

* **fingerprint collision** — catches case/ordering/punctuation variants
  and joined tokens (``airtemp``),
* **bounded edit distance** — catches typos (``air_temperatrue``), using
  Damerau-Levenshtein so transpositions cost 1.

A match is accepted only when it is *unambiguous*: a name whose nearest
candidates tie across different canonicals stays unresolved for the
curator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..text import damerau_levenshtein, fingerprint, ngram_fingerprint, normalize_name


@dataclass(frozen=True, slots=True)
class SpellingMatch:
    """One resolved misspelling."""

    written: str
    canonical: str
    method: str  # 'fingerprint' | 'ngram' | 'edit'
    distance: int  # edit distance (0 for key collisions)


class MisspellingResolver:
    """Resolver from messy names to a fixed canonical name set."""

    def __init__(
        self,
        canonical_names: list[str],
        max_distance: int = 2,
        max_distance_fraction: float = 0.25,
    ) -> None:
        """``max_distance`` caps absolute edit distance;
        ``max_distance_fraction`` caps it relative to name length (so a
        4-letter name cannot be 2 edits away from everything).

        Raises:
            ValueError: on non-positive ``max_distance`` or a fraction
                outside (0, 1].
        """
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        if not 0.0 < max_distance_fraction <= 1.0:
            raise ValueError("max_distance_fraction must lie in (0, 1]")
        self.canonical_names = list(dict.fromkeys(canonical_names))
        self.max_distance = max_distance
        self.max_distance_fraction = max_distance_fraction
        self._by_fingerprint: dict[str, set[str]] = {}
        self._by_ngram: dict[str, set[str]] = {}
        for name in self.canonical_names:
            self._by_fingerprint.setdefault(fingerprint(name), set()).add(
                name
            )
            self._by_ngram.setdefault(ngram_fingerprint(name), set()).add(
                name
            )

    def resolve(self, written: str) -> SpellingMatch | None:
        """Best unambiguous match for ``written``, or None."""
        normalized = normalize_name(written)
        if not normalized:
            return None
        # 1. fingerprint collision (case/order/punctuation variants).
        hits = self._by_fingerprint.get(fingerprint(written), set())
        if len(hits) == 1:
            return SpellingMatch(
                written=written,
                canonical=next(iter(hits)),
                method="fingerprint",
                distance=0,
            )
        # 2. n-gram fingerprint collision (joined tokens, tiny typos).
        hits = self._by_ngram.get(ngram_fingerprint(written), set())
        if len(hits) == 1:
            return SpellingMatch(
                written=written,
                canonical=next(iter(hits)),
                method="ngram",
                distance=0,
            )
        # 3. bounded edit distance, unambiguous-best-only.
        limit = min(
            self.max_distance,
            max(1, int(len(normalized) * self.max_distance_fraction)),
        )
        best_distance = limit + 1
        best_names: list[str] = []
        for name in self.canonical_names:
            if abs(len(name) - len(normalized)) > limit:
                continue
            d = damerau_levenshtein(normalized, name)
            if d < best_distance:
                best_distance = d
                best_names = [name]
            elif d == best_distance:
                best_names.append(name)
        if best_distance <= limit and len(best_names) == 1:
            return SpellingMatch(
                written=written,
                canonical=best_names[0],
                method="edit",
                distance=best_distance,
            )
        return None

    def resolve_all(
        self, written_names: list[str]
    ) -> tuple[dict[str, str], list[str]]:
        """Resolve a batch; returns ``(mapping, unresolved)``."""
        mapping: dict[str, str] = {}
        unresolved: list[str] = []
        for written in written_names:
            match = self.resolve(written)
            if match is None or match.canonical == written:
                if match is None:
                    unresolved.append(written)
            else:
                mapping[written] = match.canonical
        return mapping, unresolved

"""Source-context naming resolution (Table row 6).

A column called plain ``temperature`` means ``air_temperature`` on a met
station and ``water_temperature`` on a CTD: "specify context of variable;
make context accessible to user".  :class:`ContextRules` maps
(bare name, source context) -> canonical name; the source context of a
dataset comes from its platform and directory conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.dataset import Platform
from ..archive.mess import CONTEXT_COLLAPSE


class UnknownContextError(KeyError):
    """Raised when a bare name has no rule for the given context."""


#: Which measurement context each platform implies.
PLATFORM_CONTEXT: dict[str, str] = {
    Platform.STATION.value: "water",
    Platform.CRUISE.value: "water",
    Platform.CAST.value: "water",
    Platform.GLIDER.value: "water",
    Platform.MET.value: "air",
}


def default_context_rules() -> dict[tuple[str, str], str]:
    """(bare name, context-or-platform) -> canonical.

    Derived from the collapse map: ``temperature`` in a water context
    resolves to ``water_temperature`` (the generic in-situ variable).
    Platform-specific refinements take precedence over the broad
    air/water contexts — underway *cruise* temperature is sea-surface
    temperature.  Curators refine the mapping per archive.
    """
    rules: dict[tuple[str, str], str] = {}
    for canonical, bare in CONTEXT_COLLAPSE.items():
        context = "air" if canonical.startswith(("air_", "wind_")) else "water"
        key = (bare, context)
        # Prefer the least-specific canonical per (bare, context): e.g.
        # water_temperature over sea_surface_temperature.
        if key not in rules or len(canonical) < len(rules[key]):
            rules[key] = canonical
    rules[("temperature", Platform.CRUISE.value)] = "sea_surface_temperature"
    return rules


@dataclass(slots=True)
class ContextRules:
    """Resolver for bare, context-dependent names."""

    rules: dict[tuple[str, str], str] = field(
        default_factory=default_context_rules
    )

    def bare_names(self) -> set[str]:
        """All bare names with at least one rule."""
        return {bare for bare, __ in self.rules}

    def add(self, bare: str, context: str, canonical: str) -> None:
        """Register/override a rule (curator action)."""
        self.rules[(bare, context)] = canonical

    def resolve(self, bare: str, context: str) -> str:
        """Canonical name for ``bare`` in ``context``.

        Raises:
            UnknownContextError: when no rule covers the pair.
        """
        try:
            return self.rules[(bare, context)]
        except KeyError:
            raise UnknownContextError(f"({bare!r}, {context!r})")

    def context_of_platform(self, platform: str) -> str:
        """The measurement context a platform implies ('water' default)."""
        return PLATFORM_CONTEXT.get(platform, "water")

    def resolve_for_platform(self, bare: str, platform: str) -> str | None:
        """Resolve using a platform-specific rule when one exists, else
        the platform's implied context; None if no rule covers it."""
        specific = self.rules.get((bare, platform))
        if specific is not None:
            return specific
        context = self.context_of_platform(platform)
        return self.rules.get((bare, context))

"""The combined term resolver: one name in, one verdict out.

Chains the per-category machinery in precision order — exact vocabulary,
synonym table, abbreviation table, context rules, ambiguity analysis,
then fuzzy misspelling matching — and reports *how* each name resolved,
so experiments can attribute accuracy per Table row and the catalog can
record provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..archive.vocabulary import VOCABULARY
from ..catalog.records import VariableEntry
from .abbreviations import (
    AbbreviationTable,
    looks_like_abbreviation,
    vocabulary_abbreviation_table,
)
from .ambiguity import analyze_ambiguity, is_ambiguous_form
from .context import ContextRules
from .exclusion import ExclusionPolicy
from .spelling import MisspellingResolver
from .synonyms import SynonymTable, vocabulary_synonym_table


class ResolutionMethod(str, Enum):
    """How a written name was mapped to its canonical form."""

    EXACT = "exact"
    SYNONYM = "synonym"
    ABBREVIATION = "abbreviation"
    CONTEXT = "context"
    AMBIGUITY_EVIDENCE = "ambiguity-evidence"
    FUZZY = "fuzzy"
    CURATOR = "curator"
    UNRESOLVED = "unresolved"


@dataclass(frozen=True, slots=True)
class Resolution:
    """The verdict for one written name in one dataset."""

    written: str
    canonical: str | None
    method: ResolutionMethod
    auxiliary: bool = False
    ambiguous: bool = False
    note: str = ""

    @property
    def resolved(self) -> bool:
        """True when a canonical name was assigned."""
        return self.canonical is not None


@dataclass(slots=True)
class TermResolver:
    """Configurable resolution pipeline over the semantic machinery.

    All knowledge sources are injectable so experiments can ablate them
    (e.g. a resolver with an empty synonym table measures what discovery
    alone achieves).
    """

    synonyms: SynonymTable = field(default_factory=vocabulary_synonym_table)
    abbreviations: AbbreviationTable = field(
        default_factory=vocabulary_abbreviation_table
    )
    context_rules: ContextRules = field(default_factory=ContextRules)
    exclusion: ExclusionPolicy = field(default_factory=ExclusionPolicy)
    fuzzy: MisspellingResolver | None = None
    use_fuzzy: bool = True

    def __post_init__(self) -> None:
        if self.fuzzy is None:
            self.fuzzy = MisspellingResolver(sorted(VOCABULARY))

    def _finish(
        self,
        written: str,
        canonical: str | None,
        method: ResolutionMethod,
        ambiguous: bool = False,
        note: str = "",
    ) -> Resolution:
        auxiliary = False
        probe = canonical if canonical is not None else written
        auxiliary = self.exclusion.is_auxiliary(probe)
        return Resolution(
            written=written,
            canonical=canonical,
            method=method,
            auxiliary=auxiliary,
            ambiguous=ambiguous,
            note=note,
        )

    def resolve_name(
        self, written: str, platform: str = "station"
    ) -> Resolution:
        """Resolve a bare name without per-entry evidence.

        Ambiguous forms resolve by platform context when possible; names
        that stay ambiguous come back flagged with ``canonical=None``.
        """
        # Ambiguity first: a known ambiguous short form must not fall
        # through to fuzzy matching ('temp' is 4 edits from nothing).
        if is_ambiguous_form(written):
            resolved = self.context_rules.resolve_for_platform(
                written, platform
            )
            entry = VariableEntry.from_written(written, "", 0, 0, 0, 0, 0)
            finding = analyze_ambiguity(
                "", platform, entry, self.context_rules
            )
            if finding is not None and finding.suggested is not None:
                return self._finish(
                    written,
                    finding.suggested,
                    ResolutionMethod.AMBIGUITY_EVIDENCE,
                    note=finding.evidence,
                )
            if resolved is not None:
                return self._finish(
                    written, resolved, ResolutionMethod.CONTEXT
                )
            return self._finish(
                written, None, ResolutionMethod.UNRESOLVED, ambiguous=True
            )
        # Context-collapsed bare names ('temperature' on a CTD) resolve
        # by source context even when the bare name happens to exist in
        # the vocabulary as an abstract concept.
        if written in self.context_rules.bare_names():
            contextual = self.context_rules.resolve_for_platform(
                written, platform
            )
            if contextual is not None:
                return self._finish(
                    written, contextual, ResolutionMethod.CONTEXT
                )
        if written in VOCABULARY:
            return self._finish(written, written, ResolutionMethod.EXACT)
        preferred = self.synonyms.resolve(written)
        if preferred is not None:
            method = (
                ResolutionMethod.EXACT
                if preferred == written
                else ResolutionMethod.SYNONYM
            )
            return self._finish(written, preferred, method)
        expansion = self.abbreviations.expand(written)
        if expansion is not None and looks_like_abbreviation(written):
            return self._finish(
                written, expansion, ResolutionMethod.ABBREVIATION
            )
        contextual = self.context_rules.resolve_for_platform(
            written, platform
        )
        if contextual is not None:
            return self._finish(written, contextual, ResolutionMethod.CONTEXT)
        if self.use_fuzzy and self.fuzzy is not None:
            match = self.fuzzy.resolve(written)
            if match is not None:
                return self._finish(
                    written,
                    match.canonical,
                    ResolutionMethod.FUZZY,
                    note=f"{match.method} d={match.distance}",
                )
        return self._finish(written, None, ResolutionMethod.UNRESOLVED)

    def resolve_entry(
        self, entry: VariableEntry, platform: str, dataset_id: str = ""
    ) -> Resolution:
        """Resolve a catalog entry, using its unit/stats as evidence for
        ambiguous forms."""
        if is_ambiguous_form(entry.name):
            finding = analyze_ambiguity(
                dataset_id, platform, entry, self.context_rules
            )
            if finding is not None and finding.suggested is not None:
                return self._finish(
                    entry.name,
                    finding.suggested,
                    ResolutionMethod.AMBIGUITY_EVIDENCE,
                    note=finding.evidence,
                )
            return self._finish(
                entry.name, None, ResolutionMethod.UNRESOLVED, ambiguous=True
            )
        return self.resolve_name(entry.name, platform=platform)

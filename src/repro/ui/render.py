"""Text and HTML renderers for the two poster UI figures.

The figures show information content — the "Data Near Here" search
results page and the dataset summary page — which these renderers
reproduce as terminal text and minimal HTML.
"""

from __future__ import annotations

import html

from ..core.query import Query
from ..core.search import SearchResult
from ..core.summary import DatasetSummary


# -- search results (the "Data Near Here" interface figure) -------------------

def render_search_text(query: Query, results: list[SearchResult]) -> str:
    """The search-results page as terminal text."""
    lines = [
        "Data Near Here — search results",
        f"query: {query.describe()}",
        "-" * 72,
    ]
    if not results:
        lines.append("(no results)")
    for rank, result in enumerate(results, start=1):
        feature = result.feature
        lines.append(
            f"{rank:2d}. [{result.score:5.3f}] {feature.title}"
        )
        lines.append(
            f"      {result.dataset_id}  ({feature.platform}, "
            f"{feature.row_count} rows)"
        )
        lines.append(f"      where: {feature.bbox.center}")
        lines.append(f"      when:  {feature.interval}")
        lines.append(f"      why:   {result.breakdown.explain()}")
    # SearchResults carries match-count metadata; plain lists do not.
    if getattr(results, "truncated", False):
        lines.append(
            f"showing {len(results)} of "
            f"{results.total_matches} matching datasets"
        )
    return "\n".join(lines)


def render_search_html(query: Query, results: list[SearchResult]) -> str:
    """The search-results page as minimal HTML."""
    rows = []
    for rank, result in enumerate(results, start=1):
        feature = result.feature
        rows.append(
            "<tr>"
            f"<td>{rank}</td>"
            f"<td>{result.score:.3f}</td>"
            f"<td><a href='#{html.escape(result.dataset_id)}'>"
            f"{html.escape(feature.title)}</a></td>"
            f"<td>{html.escape(str(feature.bbox.center))}</td>"
            f"<td>{html.escape(str(feature.interval))}</td>"
            f"<td>{html.escape(result.breakdown.explain())}</td>"
            "</tr>"
        )
    return (
        "<html><head><title>Data Near Here</title></head><body>"
        f"<h1>Data Near Here</h1>"
        f"<p>Query: {html.escape(query.describe())}</p>"
        "<table border='1'>"
        "<tr><th>#</th><th>score</th><th>dataset</th>"
        "<th>where</th><th>when</th><th>why</th></tr>"
        + "".join(rows)
        + "</table></body></html>"
    )


# -- dataset summary (the summary-page figure) --------------------------------

def _variable_line(v) -> str:
    flags = []
    if v.excluded:
        flags.append("excluded")
    if v.ambiguous:
        flags.append("ambiguous")
    flag_text = f" [{', '.join(flags)}]" if flags else ""
    origin = (
        f" (was {v.written_name!r})" if v.written_name != v.name else ""
    )
    return (
        f"  {v.name:28s} {v.unit:10s} n={v.count:6d} "
        f"[{v.minimum:10.3f}, {v.maximum:10.3f}] mean={v.mean:10.3f}"
        f"{origin}{flag_text}"
    )


def render_summary_text(summary: DatasetSummary) -> str:
    """The dataset-summary page as terminal text."""
    lines = [
        f"Dataset summary: {summary.title}",
        f"id:        {summary.dataset_id}",
        f"platform:  {summary.platform}  ({summary.file_format})",
        f"location:  {summary.location_text}",
        f"time:      {summary.time_text}",
        f"rows:      {summary.row_count}",
        f"directory: {summary.source_directory}",
    ]
    if summary.attributes:
        lines.append("attributes:")
        for key, value in summary.attributes:
            lines.append(f"  {key}: {value}")
    lines.append(f"variables ({len(summary.searchable)} searchable):")
    for v in summary.searchable:
        lines.append(_variable_line(v))
        for link in v.taxonomy_links:
            lines.append(f"      -> {link}")
    if summary.detail_only:
        lines.append(
            f"detail-only variables ({len(summary.detail_only)}, "
            "excluded from search):"
        )
        for v in summary.detail_only:
            lines.append(_variable_line(v))
    return "\n".join(lines)


def render_summary_html(summary: DatasetSummary) -> str:
    """The dataset-summary page as minimal HTML."""

    def table_for(variables) -> str:
        rows = []
        for v in variables:
            rows.append(
                "<tr>"
                f"<td>{html.escape(v.name)}</td>"
                f"<td>{html.escape(v.written_name)}</td>"
                f"<td>{html.escape(v.unit)}</td>"
                f"<td>{v.count}</td>"
                f"<td>{v.minimum:.3f}</td>"
                f"<td>{v.maximum:.3f}</td>"
                f"<td>{v.mean:.3f}</td>"
                "</tr>"
            )
        return (
            "<table border='1'><tr><th>name</th><th>as written</th>"
            "<th>unit</th><th>n</th><th>min</th><th>max</th><th>mean</th>"
            "</tr>" + "".join(rows) + "</table>"
        )

    attr_items = "".join(
        f"<li><b>{html.escape(k)}</b>: {html.escape(v)}</li>"
        for k, v in summary.attributes
    )
    parts = [
        "<html><head><title>",
        html.escape(summary.title),
        "</title></head><body>",
        f"<h1>{html.escape(summary.title)}</h1>",
        f"<p>{html.escape(summary.dataset_id)} — "
        f"{html.escape(summary.platform)}, {summary.row_count} rows</p>",
        f"<p>Where: {html.escape(summary.location_text)}<br>",
        f"When: {html.escape(summary.time_text)}</p>",
        f"<ul>{attr_items}</ul>",
        "<h2>Variables</h2>",
        table_for(summary.searchable),
    ]
    if summary.detail_only:
        parts.append("<h2>Detail-only variables (excluded from search)</h2>")
        parts.append(table_for(summary.detail_only))
    parts.append("</body></html>")
    return "".join(parts)

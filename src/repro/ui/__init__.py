"""Renderers for the search-results, dataset-summary and health pages."""

from .health import (
    CatalogHealth,
    measure_health,
    render_health_report,
    render_quarantine_report,
    render_serve_report,
    render_slo_report,
    render_span_tree,
    render_telemetry_report,
)
from .render import (
    render_search_html,
    render_search_text,
    render_summary_html,
    render_summary_text,
)

__all__ = [
    "CatalogHealth",
    "measure_health",
    "render_health_report",
    "render_quarantine_report",
    "render_search_html",
    "render_search_text",
    "render_serve_report",
    "render_slo_report",
    "render_span_tree",
    "render_summary_html",
    "render_summary_text",
    "render_telemetry_report",
]

"""The catalog health report: the curator's dashboard.

One page that answers "how tamed is this archive?": dataset counts by
platform and format, spatial/temporal coverage hulls, name-resolution
progress (how much of the mess is left), exclusion/ambiguity counts and
the validation summary — the numbers a curator watches fall across
run-improve-rerun iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..archive.vocabulary import VOCABULARY
from ..catalog.store import CatalogStore
from ..geo import BoundingBox, TimeInterval
from ..obs import Histogram, walk_span_tree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..wrangling.state import QuarantineLog


@dataclass(frozen=True, slots=True)
class CatalogHealth:
    """The measured state of one catalog."""

    dataset_count: int
    datasets_by_platform: dict[str, int]
    datasets_by_format: dict[str, int]
    spatial_hull: BoundingBox | None
    temporal_hull: TimeInterval | None
    variable_entries: int
    resolved_entries: int
    excluded_entries: int
    ambiguous_entries: int
    unresolved_names: tuple[str, ...]

    @property
    def resolved_fraction(self) -> float:
        """Share of variable entries carrying a canonical name (or
        deliberately excluded)."""
        if self.variable_entries == 0:
            return 1.0
        return self.resolved_entries / self.variable_entries


def measure_health(catalog: CatalogStore) -> CatalogHealth:
    """Compute the health numbers in one pass over the catalog."""
    platforms: dict[str, int] = {}
    formats: dict[str, int] = {}
    hull_box: BoundingBox | None = None
    hull_time: TimeInterval | None = None
    entries = resolved = excluded = ambiguous = 0
    unresolved: set[str] = set()
    for feature in catalog:
        platforms[feature.platform] = platforms.get(feature.platform, 0) + 1
        formats[feature.file_format] = (
            formats.get(feature.file_format, 0) + 1
        )
        hull_box = (
            feature.bbox if hull_box is None else hull_box.union(feature.bbox)
        )
        hull_time = (
            feature.interval
            if hull_time is None
            else hull_time.union_hull(feature.interval)
        )
        for entry in feature.variables:
            entries += 1
            if entry.excluded:
                excluded += 1
                resolved += 1  # deliberately handled
            elif entry.name in VOCABULARY:
                resolved += 1
            else:
                unresolved.add(entry.name)
            if entry.ambiguous:
                ambiguous += 1
    return CatalogHealth(
        dataset_count=len(catalog),
        datasets_by_platform=platforms,
        datasets_by_format=formats,
        spatial_hull=hull_box,
        temporal_hull=hull_time,
        variable_entries=entries,
        resolved_entries=resolved,
        excluded_entries=excluded,
        ambiguous_entries=ambiguous,
        unresolved_names=tuple(sorted(unresolved)),
    )


def render_quarantine_report(quarantine: "QuarantineLog") -> str:
    """The curator-facing quarantine page: what was skipped, and why.

    One line per quarantined path with its typed error code, failure
    count and message — the skip-and-report ledger a curator works
    through between wrangles.
    """
    lines = [
        "Quarantine report",
        "=" * 60,
        f"quarantined files: {len(quarantine)} "
        f"({quarantine.resolved_total} resolved so far)",
    ]
    for path in quarantine.paths():
        entry = quarantine.get(path)
        lines.append(
            f"  {path}\n"
            f"    [{entry.error.code}] failed {entry.failures}x: "
            f"{entry.error.message}"
        )
    if len(quarantine) == 0:
        lines.append("  nothing quarantined — every scanned file cataloged")
    else:
        lines.append(
            "repair the files (or delete them) and re-run the wrangle; "
            "quarantined paths are retried automatically"
        )
    return "\n".join(lines)


def render_span_tree(snapshot: dict) -> str:
    """The ``--timings`` surface: the recorded span tree, one line per
    span path, in execution order.

    A thin view over the telemetry snapshot — the same spans feed
    ``ComponentReport.duration_seconds`` and the JSONL trace, so every
    timing surface shows the same numbers by construction.
    """
    lines = ["Span timings", "=" * 60]
    rows = list(walk_span_tree(snapshot))
    if not rows:
        lines.append("  no spans recorded")
    for path, name, depth, stats in rows:
        label = "  " * depth + name
        errors = (
            f"  [{stats['errors']} errors]" if stats["errors"] else ""
        )
        lines.append(
            f"{label:<40} {stats['count']:>5}x "
            f"{stats['total_seconds']:>9.3f}s{errors}"
        )
    dropped = snapshot.get("dropped_spans", 0)
    if dropped:
        lines.append(f"  ({dropped} spans dropped past the cap)")
    return "\n".join(lines)


def render_telemetry_report(snapshot: dict) -> str:
    """The ``--stats`` page: span tree, counters, latency histograms.

    Everything comes from one :meth:`repro.obs.Telemetry.snapshot`, so
    the report always agrees with the JSONL trace written for the same
    run.
    """
    parts = [render_span_tree(snapshot)]

    counters = snapshot.get("counters", {})
    if counters:
        lines = ["", "Counters", "-" * 60]
        for name, value in counters.items():
            lines.append(f"  {name:<40} {value:>12}")
        absorbed = counters.get("retry.absorbed", 0)
        injected = counters.get("fault.injected", 0)
        if absorbed or injected:
            organic = max(0, absorbed - injected)
            lines.append(
                f"  transients: {absorbed} absorbed "
                f"({injected} injected, {organic} organic)"
            )
        pushdown = counters.get("prefilter.pushdown", 0)
        python_side = counters.get("prefilter.python", 0)
        if pushdown or python_side:
            cand_in = counters.get("prefilter.candidates_in", 0)
            cand_out = counters.get("prefilter.candidates_out", 0)
            kept = (cand_out / cand_in) if cand_in else 1.0
            lines.append(
                f"  prefilter: {pushdown} pushdown / "
                f"{python_side} python, kept {cand_out}/{cand_in} "
                f"candidates ({kept:.0%})"
            )
        if counters.get("prefilter.rtree_unavailable"):
            lines.append(
                "  prefilter: sqlite rtree module unavailable — "
                "degraded to indexed range scans"
            )
        pooled = counters.get("procpool.queries", 0)
        pool_degraded = counters.get("procpool.degraded", 0)
        pool_stale = counters.get("procpool.stale_miss", 0)
        if pooled or pool_degraded or pool_stale:
            lines.append(
                f"  procpool: {pooled} pooled queries "
                f"({pool_degraded} degraded to threads, "
                f"{pool_stale} stale misses)"
            )
        parts.append("\n".join(lines))

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines = ["", "Gauges", "-" * 60]
        for name, value in gauges.items():
            lines.append(f"  {name:<40} {value:>12g}")
        parts.append("\n".join(lines))

    histograms = snapshot.get("histograms", {})
    rows = []
    for name, data in histograms.items():
        hist = Histogram.from_dict(data)
        if hist.count == 0:
            continue
        rows.append(
            f"  {name:<28} {hist.count:>7} "
            f"{hist.mean * 1e3:>9.2f} "
            f"{hist.percentile(0.50) * 1e3:>9.2f} "
            f"{hist.percentile(0.95) * 1e3:>9.2f} {hist.max * 1e3:>9.2f}"
        )
    if rows:
        parts.append(
            "\n".join(
                [
                    "",
                    "Latency histograms (milliseconds)",
                    "-" * 60,
                    f"  {'name':<28} {'count':>7} {'mean':>9} "
                    f"{'p50':>9} {'p95':>9} {'max':>9}",
                ]
                + rows
            )
        )
    return "\n".join(parts)


def render_slo_report(report: dict) -> str:
    """The operator-facing SLO page: per-window verdicts vs targets.

    ``report`` is :meth:`repro.obs.SLOTracker.report` — the same dict
    ``/healthz`` serves, so the terminal page and the endpoint always
    agree.
    """
    config = report.get("config", {})
    lines = [
        "SLO report",
        "=" * 60,
        f"status: {report.get('status', 'ok')}",
        f"targets: p95 <= {config.get('latency_p95_seconds', 0) * 1e3:.0f} ms"
        f", error rate <= {config.get('max_error_rate', 0):.2%}"
        f", availability >= {config.get('min_availability', 0):.2%}",
        "",
        f"  {'window':<8} {'reqs':>6} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'p99 ms':>8} {'err%':>6} {'avail%':>7}  verdict",
        "-" * 60,
    ]
    for label, window in report.get("windows", {}).items():
        verdict = window["status"]
        if window["breached"]:
            verdict += " (" + ", ".join(window["breached"]) + ")"
        lines.append(
            f"  {label:<8} {window['requests']:>6} "
            f"{window['latency_p50'] * 1e3:>8.2f} "
            f"{window['latency_p95'] * 1e3:>8.2f} "
            f"{window['latency_p99'] * 1e3:>8.2f} "
            f"{window['error_rate'] * 100:>6.2f} "
            f"{window['availability'] * 100:>7.2f}  {verdict}"
        )
    return "\n".join(lines)


def render_serve_report(report, stats: dict | None = None) -> str:
    """The ``serve-bench`` surface: one closed-loop load run.

    ``report`` is a :class:`~repro.serve.LoadReport`; ``stats`` the
    service's :meth:`~repro.serve.SearchService.stats` after the run.
    """
    lines = [
        "Serve load report",
        "=" * 60,
        f"  transport            "
        f"{getattr(report, 'transport', 'inproc'):>10}",
        f"  clients              {report.clients:>10}",
        f"  requests per client  {report.requests_per_client:>10}",
        f"  think time           {report.think_seconds * 1e3:>10.1f} ms",
        f"  completed            {report.completed:>10}",
        f"  rejected             {report.rejected:>10}",
        f"  errors               {report.errors:>10}",
        f"  duration             {report.duration_seconds:>10.3f} s",
        f"  throughput           {report.qps:>10.1f} qps",
        "",
        "Latency (milliseconds)",
        "-" * 60,
        f"  mean {report.latency_mean * 1e3:>9.2f}   "
        f"p50 {report.latency_p50 * 1e3:>9.2f}   "
        f"p95 {report.latency_p95 * 1e3:>9.2f}   "
        f"p99 {report.latency_p99 * 1e3:>9.2f}",
        f"  queued p95 {report.queued_p95 * 1e3:>9.2f}",
    ]
    status_counts = getattr(report, "status_counts", None)
    if status_counts:
        statuses = ", ".join(
            f"{status}: {count}"
            for status, count in sorted(status_counts.items())
        )
        lines.append(f"  http statuses        {statuses}")
    by_status = getattr(report, "latency_by_status", None)
    if by_status and len(by_status) > 1:
        # Only worth a line when something other than 200s happened.
        for status, summary in sorted(by_status.items()):
            lines.append(
                f"  latency[{status}]: {summary['count']} reqs, "
                f"mean {summary['mean'] * 1e3:.2f} ms, "
                f"p95 {summary['p95'] * 1e3:.2f} ms"
            )
    versions = ", ".join(str(v) for v in report.snapshot_versions)
    lines += [
        "",
        "Snapshots",
        "-" * 60,
        f"  versions served      {versions or '-'}",
        f"  max staleness        {report.max_staleness:>10}",
        f"  version regressions  "
        f"{getattr(report, 'version_regressions', 0):>10}",
    ]
    if stats is not None:
        cache = stats.get("cache") or {}
        lines += [
            "",
            "Service",
            "-" * 60,
            f"  snapshot v{stats['snapshot_version']} "
            f"(source v{stats['source_version']}, "
            f"staleness {stats['staleness']})",
            f"  concurrency {stats['max_concurrency']} "
            f"+ queue {stats['queue_depth']}"
            + (
                f", shard workers {stats['shard_workers']}"
                if stats.get("shard_workers")
                else ""
            )
            + (
                f", score workers {stats['score_workers']}"
                if stats.get("score_workers")
                else ""
            ),
            f"  cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(hit rate {cache.get('hit_rate', 0.0):.2f})",
        ]
    return "\n".join(lines)


def render_health_report(
    catalog: CatalogStore,
    validation_summary: str | None = None,
    quarantine: "QuarantineLog | None" = None,
) -> str:
    """The curator-facing health page (terminal text)."""
    health = measure_health(catalog)
    lines = [
        "Catalog health report",
        "=" * 60,
        f"datasets: {health.dataset_count}",
    ]
    for platform, count in sorted(health.datasets_by_platform.items()):
        lines.append(f"  {platform:10s} {count:5d}")
    lines.append("formats:")
    for file_format, count in sorted(health.datasets_by_format.items()):
        lines.append(f"  {file_format:10s} {count:5d}")
    if health.spatial_hull is not None:
        b = health.spatial_hull
        lines.append(
            f"spatial coverage: [{b.min_lat:.3f}, {b.min_lon:.3f}] .. "
            f"[{b.max_lat:.3f}, {b.max_lon:.3f}]"
        )
    if health.temporal_hull is not None:
        lines.append(f"temporal coverage: {health.temporal_hull}")
    lines.append(
        f"variables: {health.variable_entries} entries, "
        f"{health.resolved_fraction:.1%} tamed "
        f"({health.excluded_entries} excluded, "
        f"{health.ambiguous_entries} ambiguous)"
    )
    if health.unresolved_names:
        shown = ", ".join(health.unresolved_names[:10])
        more = (
            f" (+{len(health.unresolved_names) - 10} more)"
            if len(health.unresolved_names) > 10
            else ""
        )
        lines.append(f"unresolved names: {shown}{more}")
    else:
        lines.append("unresolved names: none")
    if quarantine is not None:
        lines.append(
            f"quarantined files: {len(quarantine)} "
            f"({quarantine.resolved_total} resolved)"
        )
    if validation_summary is not None:
        lines.append("validation: " + validation_summary.splitlines()[0])
    return "\n".join(lines)

"""Validation checks: curatorial activity 4.

The poster's examples, verbatim: "verifying that all files in a
directory are of the same type; checking that all harvested variable
names occur in the current synonym table as preferred or alternate
terms; determining that expected datasets show up" — plus the checks a
production catalog needs (unresolved names, lingering ambiguity, unknown
units, empty footprints).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..archive.vocabulary import UNIT_SYNONYMS, VOCABULARY, preferred_unit
from .state import WranglingState


@dataclass(frozen=True, slots=True)
class ValidationFailure:
    """One failed expectation."""

    check: str
    subject: str  # directory / dataset / variable the failure is about
    message: str


@dataclass(slots=True)
class ValidationReport:
    """All failures from one validation pass."""

    failures: list[ValidationFailure] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing failed."""
        return not self.failures

    def failures_for(self, check: str) -> list[ValidationFailure]:
        """Failures of one named check."""
        return [f for f in self.failures if f.check == check]

    def count_by_check(self) -> dict[str, int]:
        """check name -> failure count."""
        out: dict[str, int] = {}
        for failure in self.failures:
            out[failure.check] = out.get(failure.check, 0) + 1
        return out

    def summary(self) -> str:
        """One line per check with failures; 'all checks passed' if none."""
        if self.ok:
            return f"all {self.checks_run} checks passed"
        lines = [f"{len(self.failures)} failures:"]
        for check, count in sorted(self.count_by_check().items()):
            lines.append(f"  {check}: {count}")
        return "\n".join(lines)


class ValidationCheck(ABC):
    """One validation rule over the wrangled state."""

    name: str = "check"

    @abstractmethod
    def run(self, state: WranglingState, report: ValidationReport) -> None:
        """Append failures to ``report``."""


class DirectoryFormatConsistency(ValidationCheck):
    """'Verifying that all files in a directory are of the same type.'"""

    name = "directory-format-consistency"

    def run(self, state: WranglingState, report: ValidationReport) -> None:
        by_directory: dict[str, set[str]] = {}
        for feature in state.working:
            by_directory.setdefault(feature.source_directory, set()).add(
                feature.file_format
            )
        for directory, formats in sorted(by_directory.items()):
            if len(formats) > 1:
                report.failures.append(
                    ValidationFailure(
                        check=self.name,
                        subject=directory,
                        message=(
                            f"mixed formats {sorted(formats)} in "
                            f"{directory!r}"
                        ),
                    )
                )


class SynonymCoverage(ValidationCheck):
    """'All harvested variable names occur in the current synonym table
    as preferred or alternate terms.'

    Runs against the *written* names (the harvest), since current names
    may already be translated.
    """

    name = "synonym-coverage"

    def run(self, state: WranglingState, report: ValidationReport) -> None:
        missing: set[str] = set()
        for __, entry in state.working.iter_variables():
            if not state.resolver.synonyms.contains(entry.written_name):
                missing.add(entry.written_name)
        for name in sorted(missing):
            report.failures.append(
                ValidationFailure(
                    check=self.name,
                    subject=name,
                    message=f"harvested name {name!r} not in synonym table",
                )
            )


@dataclass(slots=True)
class ExpectedDatasets(ValidationCheck):
    """'Determining that expected datasets show up.'"""

    expected_ids: list[str] = field(default_factory=list)
    minimum_count: int = 0

    name = "expected-datasets"

    def run(self, state: WranglingState, report: ValidationReport) -> None:
        present = set(state.working.dataset_ids())
        for dataset_id in self.expected_ids:
            if dataset_id not in present:
                report.failures.append(
                    ValidationFailure(
                        check=self.name,
                        subject=dataset_id,
                        message=f"expected dataset {dataset_id!r} missing",
                    )
                )
        if len(present) < self.minimum_count:
            report.failures.append(
                ValidationFailure(
                    check=self.name,
                    subject="(count)",
                    message=(
                        f"only {len(present)} datasets, expected at least "
                        f"{self.minimum_count}"
                    ),
                )
            )


class UnresolvedNames(ValidationCheck):
    """Current names that are still not canonical vocabulary terms."""

    name = "unresolved-names"

    def run(self, state: WranglingState, report: ValidationReport) -> None:
        unresolved: set[str] = set()
        for __, entry in state.working.iter_variables():
            if entry.name not in VOCABULARY and not entry.excluded:
                unresolved.add(entry.name)
        for name in sorted(unresolved):
            report.failures.append(
                ValidationFailure(
                    check=self.name,
                    subject=name,
                    message=f"{name!r} is not a canonical variable",
                )
            )


class AmbiguousRemaining(ValidationCheck):
    """Variables still flagged ambiguous (await a curator decision)."""

    name = "ambiguous-remaining"

    def run(self, state: WranglingState, report: ValidationReport) -> None:
        for dataset_id, entry in state.working.iter_variables():
            if entry.ambiguous:
                report.failures.append(
                    ValidationFailure(
                        check=self.name,
                        subject=f"{dataset_id}:{entry.name}",
                        message=f"{entry.name!r} needs clarification",
                    )
                )


class UnknownUnits(ValidationCheck):
    """Unit strings outside every known unit family."""

    name = "unknown-units"

    def run(self, state: WranglingState, report: ValidationReport) -> None:
        seen: set[str] = set()
        for __, entry in state.working.iter_variables():
            unit = entry.unit
            if unit in seen:
                continue
            seen.add(unit)
            if preferred_unit(unit) not in UNIT_SYNONYMS:
                report.failures.append(
                    ValidationFailure(
                        check=self.name,
                        subject=unit,
                        message=f"unit {unit!r} not in any known family",
                    )
                )


DEFAULT_CHECKS: tuple[type[ValidationCheck], ...] = (
    DirectoryFormatConsistency,
    SynonymCoverage,
    UnresolvedNames,
    AmbiguousRemaining,
    UnknownUnits,
)


def validate(
    state: WranglingState,
    checks: list[ValidationCheck] | None = None,
) -> ValidationReport:
    """Run validation checks (defaults cover the poster's examples)."""
    if checks is None:
        checks = [cls() for cls in DEFAULT_CHECKS]
    report = ValidationReport()
    for check in checks:
        check.run(state, report)
        report.checks_run += 1
    return report

"""Publish component.

"Publish" — the final box: the working catalog, now wrangled, replaces
the published metadata catalog that search runs against.  The
two-catalog design means every destructive transformation so far has
only ever touched the working copy.

Publication is incremental by default: each dataset's feature is
digested, and only datasets whose digest changed since the last publish
are rewritten (vanished datasets are removed).  Three mechanisms keep
the re-run loop cheap:

* **Digest caching** — digests are remembered in the state's
  :class:`~repro.wrangling.state.DigestCache`, stamped with the store
  version they were computed at.  An unchanged re-wrangle (both store
  versions match) computes *zero* digests and issues *zero* store
  writes; a changed one digests each side at most once instead of the
  2N serialize+hash passes the naive diff pays.
* **Batched writes** — changed *and* vanished datasets go through one
  ``CatalogStore.apply_batch``: a single transaction and ONE version
  bump per publish, so the query-serving cache built on catalog
  versions invalidates once per publish (not once per dataset) and a
  concurrent catalog snapshot sees the whole publish or none of it.
* **Bulk reads** — both catalogs are walked with the grouped
  ``features()`` iterator, avoiding SQLite's 1+2N per-dataset query
  pattern.

Set ``incremental=False`` to force the clear-and-copy behaviour.

Publishing is also fault-tolerant: store writes retry on transient
SQLite busy/locked conditions under a bounded
:class:`~repro.core.retry.RetryPolicy`; a fault that outlives the
budget defers the publish — the digest cache is left unrefreshed and
``published_delta`` unset, so the next wrangle recomputes the diff and
converges — instead of aborting the chain.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..catalog.io import feature_to_dict
from ..core.errors import classify_exception, is_transient
from ..core.retry import RetryPolicy, retry_call
from ..obs import get_telemetry
from .component import Component, ComponentReport
from .state import PublishDelta, WranglingState


def feature_digest(feature) -> str:
    """A stable digest of everything search can observe of a feature."""
    payload = json.dumps(
        feature_to_dict(feature), sort_keys=True, allow_nan=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class Publish(Component):
    """The figure's final box."""

    require_nonempty: bool = True
    incremental: bool = True
    #: Bounded retry for transient (busy/locked) store writes.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    name = "publish"

    def _write(self, fn, report: ComponentReport, key: str):
        """One retried store write; absorbed faults count as retries."""

        def count_retry(attempt, exc, pause):
            report.retries += 1

        return retry_call(
            fn, self.retry, key=key, on_retry=count_retry
        )

    def _defer(
        self, state: WranglingState, report: ComponentReport, exc: Exception
    ) -> None:
        """Give up on this publish without corrupting incremental state.

        The digest cache keeps its *previous* stamp (the store versions
        will not match next run, forcing a fresh diff) and the delta is
        left unset, so index maintenance falls back to a full rebuild.
        """
        report.add_error(
            classify_exception(exc, attempts=self.retry.attempts)
        )
        report.add(
            "publish deferred: catalog store busy; retried on the next run"
        )
        telemetry = get_telemetry()
        telemetry.count("publish.deferred")
        telemetry.event("publish.deferred", error=type(exc).__name__)
        state.published_delta = None

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        telemetry = get_telemetry()
        state.published_delta = None
        if self.require_nonempty and len(state.working) == 0:
            report.add("refusing to publish an empty working catalog")
            return
        report.items_seen = len(state.working)
        if not self.incremental:
            try:
                with telemetry.span("publish.copy"):
                    report.changes = self._write(
                        lambda: state.working.copy_into(state.published),
                        report,
                        "publish:copy",
                    )
            except Exception as exc:
                if not is_transient(exc):
                    raise
                self._defer(state, report, exc)
                return
            state.digest_cache.invalidate()
            state.published_delta = PublishDelta(full_copy=True)
            telemetry.count("publish.full_copies")
            report.add(f"published {report.changes} datasets (full copy)")
            return

        cache = state.digest_cache
        digests_computed = 0

        # -- working side: feature digests, reused when version matches --
        if cache.working_version == state.working.version:
            telemetry.count("publish.digest_cache_hits")
            working_digests = cache.working
            working_features: dict | None = None
        else:
            telemetry.count("publish.digest_cache_misses")
            working_features = {}
            working_digests = {}
            with telemetry.span("publish.digest", side="working"):
                for feature in state.working.features():
                    working_features[feature.dataset_id] = feature
                    working_digests[feature.dataset_id] = feature_digest(
                        feature
                    )
                    digests_computed += 1

        # -- published side: last publish's digests, unless someone else
        #    mutated the store since (version mismatch -> recompute) -----
        if cache.published_version == state.published.version:
            telemetry.count("publish.digest_cache_hits")
            published_digests = cache.published
        else:
            telemetry.count("publish.digest_cache_misses")
            published_digests = {}
            with telemetry.span("publish.digest", side="published"):
                for feature in state.published.features():
                    published_digests[feature.dataset_id] = feature_digest(
                        feature
                    )
                    digests_computed += 1

        delta = PublishDelta()
        changed_ids = []
        for dataset_id in sorted(working_digests):
            if published_digests.get(dataset_id) == working_digests[
                dataset_id
            ]:
                report.items_skipped += 1
            else:
                changed_ids.append(dataset_id)
        if working_features is None:
            changed_features = [
                state.working.get(dataset_id) for dataset_id in changed_ids
            ]
        else:
            changed_features = [
                working_features[dataset_id] for dataset_id in changed_ids
            ]
        vanished = sorted(set(published_digests) - set(working_digests))
        if changed_ids or vanished:
            # One apply_batch: upserts and removals land in a single
            # transaction under a single version bump, so a concurrent
            # snapshot (the serving layer's) sees the whole publish or
            # none of it — never the upserted-but-not-yet-removed
            # middle.  Materialized (not a generator) so a retried
            # write replays the identical batch.
            base_version = state.published.version
            try:
                with telemetry.span(
                    "publish.apply",
                    upserts=len(changed_ids),
                    removals=len(vanished),
                ):
                    self._write(
                        lambda: state.published.apply_batch(
                            changed_features, vanished
                        ),
                        report,
                        "publish:apply",
                    )
            except Exception as exc:
                if not is_transient(exc):
                    raise
                self._defer(state, report, exc)
                return
            delta.upserted.extend(changed_ids)
            delta.removed.extend(vanished)
            # Version-stamp the delta so consumers can prove it is the
            # only change between two store versions (the COW snapshot
            # path checks spans()).  One batch = one bump; anything else
            # (a foreign writer interleaved, a store without the
            # single-bump apply_batch override) leaves the stamps
            # useless and consumers fall back to a full snapshot.
            after_version = state.published.version
            if after_version == base_version + 1:
                delta.base_version = base_version
                delta.published_version = after_version
            report.changes += len(changed_ids) + len(vanished)
            for dataset_id in vanished:
                report.add(f"withdrew vanished dataset {dataset_id}")

        # -- refresh the cache to this publish's outcome ------------------
        cache.working = dict(working_digests)
        cache.working_version = state.working.version
        published = dict(published_digests)
        for dataset_id in changed_ids:
            published[dataset_id] = working_digests[dataset_id]
        for dataset_id in vanished:
            published.pop(dataset_id, None)
        cache.published = published
        cache.published_version = state.published.version

        state.published_delta = delta
        telemetry.count("publish.digests", digests_computed)
        telemetry.count("publish.upserted", len(changed_ids))
        telemetry.count("publish.removed", len(vanished))
        telemetry.count("publish.unchanged", report.items_skipped)
        telemetry.gauge("catalog.size", len(state.published))
        report.add(
            f"published {report.changes} changed datasets, "
            f"{report.items_skipped} unchanged"
        )
        report.add(f"computed {digests_computed} feature digests")

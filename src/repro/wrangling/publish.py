"""Publish component.

"Publish" — the final box: the working catalog, now wrangled, replaces
the published metadata catalog that search runs against.  The
two-catalog design means every destructive transformation so far has
only ever touched the working copy.

Publication is incremental by default: each dataset's feature is
digested, and only datasets whose digest changed since the last publish
are rewritten (vanished datasets are removed).  A full re-publish of an
unchanged working catalog is therefore free — which matters when the
published store is SQLite on disk and the chain re-runs often.  Set
``incremental=False`` to force the clear-and-copy behaviour.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..catalog.io import feature_to_dict
from ..catalog.store import DatasetNotFoundError
from .component import Component, ComponentReport
from .state import PublishDelta, WranglingState


def feature_digest(feature) -> str:
    """A stable digest of everything search can observe of a feature."""
    payload = json.dumps(
        feature_to_dict(feature), sort_keys=True, allow_nan=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class Publish(Component):
    """The figure's final box."""

    require_nonempty: bool = True
    incremental: bool = True

    name = "publish"

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        state.published_delta = None
        if self.require_nonempty and len(state.working) == 0:
            report.add("refusing to publish an empty working catalog")
            return
        report.items_seen = len(state.working)
        if not self.incremental:
            report.changes = state.working.copy_into(state.published)
            state.published_delta = PublishDelta(full_copy=True)
            report.add(f"published {report.changes} datasets (full copy)")
            return
        delta = PublishDelta()
        published_ids = set(state.published.dataset_ids())
        working_ids = set(state.working.dataset_ids())
        for dataset_id in sorted(working_ids):
            feature = state.working.get(dataset_id)
            digest = feature_digest(feature)
            if dataset_id in published_ids:
                current = state.published.get(dataset_id)
                if feature_digest(current) == digest:
                    report.items_skipped += 1
                    continue
            state.published.upsert(feature.copy())
            delta.upserted.append(dataset_id)
            report.changes += 1
        for dataset_id in sorted(published_ids - working_ids):
            try:
                state.published.remove(dataset_id)
            except DatasetNotFoundError:  # pragma: no cover
                continue
            delta.removed.append(dataset_id)
            report.changes += 1
            report.add(f"withdrew vanished dataset {dataset_id}")
        state.published_delta = delta
        report.add(
            f"published {report.changes} changed datasets, "
            f"{report.items_skipped} unchanged"
        )

"""Shared state threaded through a metadata processing chain.

The wrangling figure's boxes all read and write the same artifacts: the
archive filesystem, the *working catalog*, external metadata, curated
knowledge tables, discovered rules, the generated hierarchy, and the
published *metadata catalog*.  :class:`WranglingState` carries them, so
components stay small and composable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.filesystem import VirtualArchive
from ..archive.generator import StationRecord
from ..catalog.store import CatalogStore, MemoryCatalog
from ..core.errors import ErrorRecord
from ..hierarchy import ConceptHierarchy, TaxonomyLinks
from ..refine.history import RuleSet
from ..semantics import (
    AmbiguityDecision,
    TermResolver,
)


@dataclass(slots=True)
class PublishDelta:
    """What the most recent publish changed in the published catalog.

    Downstream consumers (search-index maintenance, the serving layer's
    copy-on-write refresh) use this to update incrementally in
    O(changed) instead of rebuilding over the whole catalog.
    ``full_copy`` marks a non-incremental clear-and-copy publish, after
    which only a full rebuild is sound.

    ``base_version``/``published_version`` stamp the published store's
    version immediately before and after the publish's single
    ``apply_batch``.  ``published == base + 1`` (one batch, one bump)
    is what makes the delta *provably complete*: a consumer holding a
    snapshot at ``base_version`` can reach ``published_version`` by
    applying exactly this delta — any interleaved foreign write would
    show up as an extra bump and fail :meth:`spans`.  Unstamped deltas
    (``-1``, below any real store version) never span anything.
    """

    upserted: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    full_copy: bool = False
    base_version: int = -1
    published_version: int = -1

    @property
    def changed(self) -> int:
        """Number of datasets touched."""
        return len(self.upserted) + len(self.removed)

    def spans(self, base_version: int, target_version: int) -> bool:
        """True when applying this delta to a snapshot at
        ``base_version`` provably yields the store at ``target_version``
        (the sole intervening mutation was this delta's own batch)."""
        return (
            not self.full_copy
            and self.base_version >= 0
            and self.base_version == base_version
            and self.published_version == target_version
            and self.published_version == self.base_version + 1
        )


@dataclass(slots=True)
class DigestCache:
    """Feature digests remembered between publishes.

    ``feature_digest`` (serialize + SHA-256) is the publish step's unit
    of work; without a cache every re-wrangle pays 2N digests even when
    nothing changed.  Each side (working / published) keeps the digests
    it computed stamped with the store version they were computed at: a
    matching version means the store has not mutated since, so the whole
    map is still exact and an unchanged re-wrangle digests *nothing*.  A
    mismatched version discards that side (any mutation may have touched
    any dataset).  Versions start at -1, below any real store version.
    """

    working_version: int = -1
    working: dict[str, str] = field(default_factory=dict)
    published_version: int = -1
    published: dict[str, str] = field(default_factory=dict)

    def invalidate(self) -> None:
        """Forget everything (after a non-incremental full copy)."""
        self.working_version = -1
        self.working.clear()
        self.published_version = -1
        self.published.clear()


@dataclass(slots=True)
class QuarantineEntry:
    """One path the pipeline has set aside instead of crashing on."""

    path: str
    error: ErrorRecord
    #: How many wrangles have now failed on this path.
    failures: int = 1


@dataclass(slots=True)
class QuarantineLog:
    """Paths skipped with a reason, pending repair or disappearance.

    Lifecycle: a per-file failure (parse error, exhausted transient
    reads, worker exception) quarantines the path with its typed error.
    Quarantined paths are never hash-skipped, so every subsequent
    wrangle retries them automatically; a successful catalog upsert —
    or the file vanishing from the archive — resolves the entry.
    """

    entries: dict[str, QuarantineEntry] = field(default_factory=dict)
    #: Entries resolved over the state's lifetime (repair telemetry).
    resolved_total: int = 0

    def add(self, path: str, error: ErrorRecord) -> QuarantineEntry:
        """Quarantine ``path`` (or record another failure on it)."""
        entry = self.entries.get(path)
        if entry is None:
            entry = QuarantineEntry(path=path, error=error)
            self.entries[path] = entry
        else:
            entry.error = error
            entry.failures += 1
        return entry

    def resolve(self, path: str) -> bool:
        """Drop ``path`` from quarantine; True when it was present."""
        if path in self.entries:
            del self.entries[path]
            self.resolved_total += 1
            return True
        return False

    def get(self, path: str) -> QuarantineEntry | None:
        """The entry for ``path``, if quarantined."""
        return self.entries.get(path)

    def paths(self) -> list[str]:
        """Sorted quarantined paths."""
        return sorted(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, path: str) -> bool:
        return path in self.entries


@dataclass(slots=True)
class WranglingState:
    """Everything a processing chain reads and writes."""

    fs: VirtualArchive
    working: CatalogStore = field(default_factory=MemoryCatalog)
    published: CatalogStore = field(default_factory=MemoryCatalog)
    resolver: TermResolver = field(default_factory=TermResolver)
    decisions: list[AmbiguityDecision] = field(default_factory=list)
    discovered_rules: RuleSet | None = None
    hierarchy: ConceptHierarchy | None = None
    taxonomy_links: TaxonomyLinks | None = None
    stations: list[StationRecord] = field(default_factory=list)
    scanned_hashes: dict[str, str] = field(default_factory=dict)
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    digest_cache: DigestCache = field(default_factory=DigestCache)
    notes: list[str] = field(default_factory=list)
    published_delta: PublishDelta | None = None

    def note(self, message: str) -> None:
        """Record a free-form provenance note."""
        self.notes.append(message)

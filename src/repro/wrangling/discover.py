"""Discover-transformations and perform-discovered-transformations.

The figure splits discovery ("Discover transformations", feeding Google
Refine) from application ("Perform discovered transformations") — rules
are reviewed between the two.  :class:`DiscoverTransformations` runs the
Refine session over the *unresolved* names left in the working catalog
and stores the rule set on the state; :class:`PerformDiscoveredTransformations`
replays whatever rules the state carries (discovered here, or imported
from a real Refine export).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.vocabulary import VOCABULARY
from ..refine.bridge import (
    DiscoverySession,
    apply_rules_to_catalog,
    catalog_to_table,
    make_canonical_chooser,
)
from ..refine.history import RuleSet
from .component import Component, ComponentReport
from .state import WranglingState


def _default_session() -> DiscoverySession:
    return DiscoverySession(
        method="nn-levenshtein",
        radius=2.0,
        chooser=make_canonical_chooser(set(VOCABULARY)),
        seed_values={name: 1 for name in VOCABULARY},
    )


@dataclass(slots=True)
class DiscoverTransformations(Component):
    """The figure's discovery box (Refine round-trip, export side)."""

    session: DiscoverySession = field(default_factory=_default_session)
    only_unresolved: bool = True

    name = "discover-transformations"

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        table = catalog_to_table(state.working)
        if self.only_unresolved:
            # Names already in the vocabulary need no discovery; keep the
            # mess that's left.
            table.rows = [
                row for row in table.rows if row["field"] not in VOCABULARY
            ]
        report.items_seen = len(table)
        rules = self.session.discover(table)
        state.discovered_rules = rules
        mapping = rules.rename_mapping()
        report.changes = len(mapping)
        report.add(
            f"{len(mapping)} discovered renames via {self.session.method}"
        )


@dataclass(slots=True)
class PerformDiscoveredTransformations(Component):
    """The figure's apply box (Refine round-trip, replay side)."""

    rules: RuleSet | None = None  # overrides state.discovered_rules

    name = "discovered-transformations"

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        rules = self.rules or state.discovered_rules
        if rules is None or not len(rules):
            report.add("no discovered rules to perform")
            return
        report.items_seen = len(rules.rename_mapping())
        report.changes = apply_rules_to_catalog(
            rules, state.working, resolution="discovered"
        )
        report.add(f"replayed {len(rules)} operations")

"""The metadata processing chain: compose, run, re-run.

"Creating metadata wrangling process for archive from composable
components" (curatorial activity 1) and "running & rerunning process"
(activity 2).  A chain is an ordered component list; each run yields a
:class:`ChainRunReport` with per-component provenance, and the chain
keeps run history so experiments can compare cold runs with re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import get_telemetry
from .component import Component, ComponentReport
from .discover import (
    DiscoverTransformations,
    PerformDiscoveredTransformations,
)
from .external import AddExternalMetadata
from .hierarchy_gen import GenerateHierarchies
from .known import PerformKnownTransformations
from .publish import Publish
from .scan import ScanArchive
from .state import WranglingState


class ChainCompositionError(ValueError):
    """Raised for invalid chain edits."""


@dataclass(slots=True)
class ChainRunReport:
    """Provenance of one chain run."""

    run_number: int
    component_reports: list[ComponentReport] = field(default_factory=list)
    duration_seconds: float = 0.0

    @property
    def total_changes(self) -> int:
        """Sum of changes across components."""
        return sum(r.changes for r in self.component_reports)

    def report_for(self, component_name: str) -> ComponentReport:
        """The report of one component.

        Raises:
            KeyError: when the component did not run.
        """
        for report in self.component_reports:
            if report.component == component_name:
                return report
        raise KeyError(component_name)

    def summary(self) -> str:
        """A one-line-per-component text summary."""
        lines = [f"run #{self.run_number} ({self.duration_seconds:.3f}s)"]
        for r in self.component_reports:
            lines.append(
                f"  {r.component:28s} changes={r.changes:5d} "
                f"seen={r.items_seen:5d} skipped={r.items_skipped:5d} "
                f"{r.duration_seconds:.3f}s"
            )
        return "\n".join(lines)


@dataclass(slots=True)
class ProcessChain:
    """An ordered, editable list of components."""

    components: list[Component] = field(default_factory=list)
    history: list[ChainRunReport] = field(default_factory=list)

    def append(self, component: Component) -> None:
        """Add a component at the end."""
        self.components.append(component)

    def insert_before(self, name: str, component: Component) -> None:
        """Insert ``component`` before the component called ``name``.

        Raises:
            ChainCompositionError: when ``name`` is not in the chain.
        """
        for i, existing in enumerate(self.components):
            if existing.name == name:
                self.components.insert(i, component)
                return
        raise ChainCompositionError(f"no component named {name!r}")

    def remove(self, name: str) -> Component:
        """Remove and return the first component called ``name``.

        Raises:
            ChainCompositionError: when absent.
        """
        for i, existing in enumerate(self.components):
            if existing.name == name:
                return self.components.pop(i)
        raise ChainCompositionError(f"no component named {name!r}")

    def component(self, name: str) -> Component:
        """The first component called ``name``.

        Raises:
            ChainCompositionError: when absent.
        """
        for existing in self.components:
            if existing.name == name:
                return existing
        raise ChainCompositionError(f"no component named {name!r}")

    def names(self) -> list[str]:
        """Component names in order."""
        return [c.name for c in self.components]

    def run(self, state: WranglingState) -> ChainRunReport:
        """Execute every component in order (activity 2).

        The whole run is the root ``wrangle`` tracing span; each
        component's :meth:`~Component.execute` nests its own span under
        it, and the run report's duration is read off the root span —
        one timing source for reports, ``--timings`` and traces alike.
        """
        run_report = ChainRunReport(run_number=len(self.history) + 1)
        with get_telemetry().span(
            "wrangle", run=run_report.run_number
        ) as span:
            for component in self.components:
                run_report.component_reports.append(component.execute(state))
        run_report.duration_seconds = span.duration
        self.history.append(run_report)
        return run_report

    @property
    def last_run(self) -> ChainRunReport | None:
        """The most recent run report, if any."""
        return self.history[-1] if self.history else None


def default_chain(
    scan: ScanArchive | None = None,
    discovery: DiscoverTransformations | None = None,
) -> ProcessChain:
    """The poster's seven-box chain, in figure order."""
    return ProcessChain(
        components=[
            scan or ScanArchive(),
            PerformKnownTransformations(),
            AddExternalMetadata(),
            discovery or DiscoverTransformations(),
            PerformDiscoveredTransformations(),
            GenerateHierarchies(),
            Publish(),
        ]
    )

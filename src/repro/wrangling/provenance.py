"""A provenance journal for the wrangling process.

Curators must be able to answer "why is this variable called that?" —
especially after several run-improve-rerun iterations.  The journal
records every rename, exclusion and decision with the component and run
that produced it, and renders per-variable audit trails.

Events are reconstructed from the catalog itself (written vs current
name plus the stored ``resolution`` method) and accumulated across runs
by :func:`snapshot`, so components need no extra wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..catalog.store import CatalogStore


@dataclass(frozen=True, slots=True)
class ProvenanceEvent:
    """One observed transformation of one variable."""

    run_number: int
    dataset_id: str
    written_name: str
    old_name: str
    new_name: str
    method: str  # resolution label ('synonym', 'fuzzy', 'curator', ...)
    kind: str = "rename"  # 'rename' | 'exclude' | 'include' | 'flag'

    def describe(self) -> str:
        """One audit-trail line."""
        if self.kind == "rename":
            return (
                f"run {self.run_number}: {self.old_name!r} -> "
                f"{self.new_name!r} via {self.method or 'unknown'}"
            )
        if self.kind == "exclude":
            return (
                f"run {self.run_number}: {self.new_name!r} excluded "
                "from search"
            )
        if self.kind == "include":
            return (
                f"run {self.run_number}: {self.new_name!r} restored "
                "to search"
            )
        return f"run {self.run_number}: {self.new_name!r} flagged ambiguous"


@dataclass(slots=True)
class _VariableState:
    name: str
    excluded: bool
    ambiguous: bool


@dataclass(slots=True)
class ProvenanceJournal:
    """Accumulates events by diffing successive catalog snapshots."""

    events: list[ProvenanceEvent] = field(default_factory=list)
    _last: dict[tuple[str, str], _VariableState] = field(
        default_factory=dict, repr=False
    )
    runs_seen: int = 0

    def snapshot(self, catalog: CatalogStore) -> int:
        """Diff the catalog against the previous snapshot; returns the
        number of new events recorded."""
        self.runs_seen += 1
        new_events = 0
        current: dict[tuple[str, str], _VariableState] = {}
        methods: dict[tuple[str, str], str] = {}
        for dataset_id, entry in catalog.iter_variables():
            key = (dataset_id, entry.written_name)
            current[key] = _VariableState(
                name=entry.name,
                excluded=entry.excluded,
                ambiguous=entry.ambiguous,
            )
            methods[key] = entry.resolution
        for key, state in current.items():
            dataset_id, written = key
            previous = self._last.get(key)
            old_name = previous.name if previous is not None else written
            if state.name != old_name:
                self.events.append(
                    ProvenanceEvent(
                        run_number=self.runs_seen,
                        dataset_id=dataset_id,
                        written_name=written,
                        old_name=old_name,
                        new_name=state.name,
                        method=methods[key],
                        kind="rename",
                    )
                )
                new_events += 1
            was_excluded = previous.excluded if previous else False
            if state.excluded != was_excluded:
                self.events.append(
                    ProvenanceEvent(
                        run_number=self.runs_seen,
                        dataset_id=dataset_id,
                        written_name=written,
                        old_name=state.name,
                        new_name=state.name,
                        method=methods[key],
                        kind="exclude" if state.excluded else "include",
                    )
                )
                new_events += 1
            was_ambiguous = previous.ambiguous if previous else False
            if state.ambiguous and not was_ambiguous:
                self.events.append(
                    ProvenanceEvent(
                        run_number=self.runs_seen,
                        dataset_id=dataset_id,
                        written_name=written,
                        old_name=state.name,
                        new_name=state.name,
                        method=methods[key],
                        kind="flag",
                    )
                )
                new_events += 1
        self._last = current
        return new_events

    # -- queries ---------------------------------------------------------------

    def events_for(
        self, dataset_id: str, written_name: str
    ) -> list[ProvenanceEvent]:
        """All events of one variable, in order."""
        return [
            e
            for e in self.events
            if e.dataset_id == dataset_id and e.written_name == written_name
        ]

    def events_by_method(self) -> dict[str, int]:
        """rename-method -> count (the 'who tamed what' breakdown)."""
        out: dict[str, int] = {}
        for event in self.events:
            if event.kind == "rename":
                method = event.method or "unknown"
                out[method] = out.get(method, 0) + 1
        return out

    def audit_trail(self, dataset_id: str, written_name: str) -> str:
        """Human-readable history of one variable."""
        events = self.events_for(dataset_id, written_name)
        header = f"{dataset_id} :: {written_name!r}"
        if not events:
            return f"{header}\n  (no transformations recorded)"
        lines = [header]
        lines.extend(f"  {event.describe()}" for event in events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ProvenanceEvent]:
        return iter(self.events)

"""Add-external-metadata component.

"Add external metadata" — the archive's station registry (and any other
side tables) enriches the working catalog: dataset titles gain the
registry's official station names, and registry coordinates fill or
cross-check the scanned footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..archive.generator import parse_station_registry
from ..archive.render import STATION_REGISTRY_PATH
from ..geo import GeoPoint
from .component import Component, ComponentReport
from .state import WranglingState


@dataclass(slots=True)
class AddExternalMetadata(Component):
    """The figure's external-metadata box."""

    registry_path: str = STATION_REGISTRY_PATH
    max_position_discrepancy_km: float = 5.0

    name = "external-metadata"

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        if not state.fs.exists(self.registry_path):
            report.add(f"no registry at {self.registry_path}")
            return
        text = state.fs.get(self.registry_path).content
        try:
            stations = parse_station_registry(text)
        except ValueError as exc:
            report.add(f"registry parse error: {exc}")
            return
        state.stations = stations
        by_id = {s.station_id: s for s in stations}
        for dataset_id in state.working.dataset_ids():
            feature = state.working.get(dataset_id)
            report.items_seen += 1
            station_id = feature.attributes.get("station")
            if station_id is None or station_id not in by_id:
                continue
            station = by_id[station_id]
            touched = False
            if feature.attributes.get("station_name") != station.name:
                feature.attributes["station_name"] = station.name
                touched = True
                report.changes += 1
            if (
                feature.attributes.get("station_description")
                != station.description
            ):
                feature.attributes["station_description"] = (
                    station.description
                )
                touched = True
            # Cross-check: scanned footprint vs registry position.
            registry_point = GeoPoint(station.lat, station.lon)
            distance = feature.bbox.distance_km_to_point(registry_point)
            if distance > self.max_position_discrepancy_km:
                message = (
                    f"{dataset_id}: scanned footprint {distance:.1f} km "
                    f"from registry position of {station_id}"
                )
                report.add(message)
                if feature.attributes.get("position_flag") != "discrepant":
                    feature.attributes["position_flag"] = "discrepant"
                    touched = True
            if touched:
                state.working.upsert(feature)
        report.add(f"registry has {len(stations)} stations")

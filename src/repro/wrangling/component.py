"""The composable component protocol and run reporting.

"Set of composable components; compose into 'metadata processing chain';
details of process different for each archive."  A component is a named,
configured unit of work over :class:`~repro.wrangling.state.WranglingState`;
running one yields a :class:`ComponentReport` (the provenance the
curator's validation step reads).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..core.errors import ErrorCode, ErrorRecord
from ..obs import get_telemetry
from .state import WranglingState


@dataclass(slots=True)
class ComponentReport:
    """What one component did during one run."""

    component: str
    changes: int = 0
    items_seen: int = 0
    items_skipped: int = 0
    duration_seconds: float = 0.0
    messages: list[str] = field(default_factory=list)
    #: Typed failure records (machine-checkable; every error also
    #: appears as a provenance message).
    errors: list[ErrorRecord] = field(default_factory=list)
    #: Transient faults absorbed by the retry layer during this run.
    retries: int = 0

    def add(self, message: str) -> None:
        """Attach a provenance message."""
        self.messages.append(message)

    def add_error(
        self, error: ErrorRecord, message: str | None = None
    ) -> None:
        """Attach a typed error record (and its provenance message).

        ``message`` overrides the record's default rendering where a
        historical message format must be preserved.
        """
        self.errors.append(error)
        self.messages.append(message if message is not None else str(error))

    def errors_by_code(self, code: ErrorCode) -> list[ErrorRecord]:
        """The recorded errors of one category."""
        return [e for e in self.errors if e.code is code]

    @property
    def was_noop(self) -> bool:
        """True when the run changed nothing."""
        return self.changes == 0


class Component(ABC):
    """One box of the wrangling figure."""

    #: Human-readable component name (the figure's box label).
    name: str = "component"

    @abstractmethod
    def run(self, state: WranglingState, report: ComponentReport) -> None:
        """Do the work, mutating ``state`` and filling ``report``."""

    def execute(self, state: WranglingState) -> ComponentReport:
        """Run inside a tracing span; returns the filled report.

        The span is the single timing source: ``report.duration_seconds``
        is read off it (spans measure their duration whether or not the
        active telemetry records them), so ``--timings``, trace files
        and component reports can never disagree.
        """
        report = ComponentReport(component=self.name)
        with get_telemetry().span(self.name) as span:
            self.run(state, report)
        report.duration_seconds = span.duration
        return report

    def describe(self) -> str:
        """One-line description (used in chain listings)."""
        return self.name

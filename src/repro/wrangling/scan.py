"""Scan-archive component.

"Scan archive — configure: directories, file types, naming conventions."
Parses every matching file once, extracts its feature and upserts it into
the working catalog.  Incremental by content hash: a re-run skips files
whose content is unchanged (this is what makes the poster's "running &
re-running process" cheap) and drops catalog entries whose files
disappeared from the scanned directories.

This is the ingest fast path's entry point: parse + feature extraction
fan out over a chunked process pool (``workers``; ``None`` means one per
CPU, ``1`` keeps the exact serial path — parsing is pure python, so
threads would serialize on the GIL), while catalog writes stay ordered
by path and go through ``upsert_many``/``remove_many`` — one batch, one
transaction, one version bump.  Parallel and serial scans produce
identical catalogs by construction: workers only compute, and results
are applied in deterministic path order.  Batches smaller than
``min_parallel_files`` skip the pool entirely — spawning workers costs
more than parsing a handful of files.

The scan is also the pipeline's first line of fault tolerance: it must
*skip and report*, never crash.  Concretely:

* transient archive reads retry under a bounded
  :class:`~repro.core.retry.RetryPolicy` with deterministic backoff;
  a read that outlives the budget quarantines the file,
* any per-file exception inside a worker — parse error, empty dataset,
  extractor bug — comes back as *data* (a ``FormatError`` or a
  :class:`~repro.core.errors.WorkerFailure`) and quarantines the file,
* a dying worker pool (``BrokenProcessPool``) degrades the affected
  chunks to a serial recomputation in the parent — same pure function,
  same results, scan completes,
* catalog writes retry on SQLite busy/locked; on exhaustion the batch
  is deferred (hashes stay unrecorded, so the next wrangle retries it).

Quarantined paths live in ``state.quarantine`` with their typed error;
they are re-attempted on every wrangle and resolve on success or when
the file disappears.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..archive.filesystem import ArchiveFile
from ..archive.formats import FormatError, parse_file
from ..catalog.records import DatasetFeature
from ..core.errors import (
    ErrorCode,
    ErrorRecord,
    WorkerFailure,
    classify_exception,
    is_transient,
)
from ..core.features import extract_feature
from ..core.retry import RetryPolicy, retry_call
from ..obs import Telemetry, get_telemetry, use_telemetry
from .component import Component, ComponentReport
from .state import WranglingState

#: A worker's verdict on one file: the extracted feature, a parse error,
#: or any other per-file exception wrapped as data.
ScanOutcome = DatasetFeature | FormatError | WorkerFailure


def _build_feature(record: ArchiveFile, content_hash: str) -> ScanOutcome:
    """Worker unit: parse + extract one file.

    Never raises: errors are data here — they must be reported in path
    order, not raised out of an arbitrary worker (an escaping exception
    would abort the whole pool).  ``FormatError`` keeps its identity
    whether parse *returns* it or *raises* it anywhere in the unit, so
    the parallel path reports exactly what the serial path reports.

    Per-file outcome counters and the parse-latency histogram go to the
    *active* telemetry — inside a pool worker that is the worker's
    private registry (merged back by the parent), serially it is the
    run's own; either way the totals come out identical.
    """
    telemetry = get_telemetry()
    started = time.monotonic()
    try:
        dataset = parse_file(record.content, record.path)
        feature = extract_feature(dataset, content_hash=content_hash)
    except FormatError as exc:
        telemetry.count("scan.parse_errors")
        return exc
    except Exception as exc:
        telemetry.count("scan.worker_failures")
        return WorkerFailure.from_exception(record.path, exc)
    telemetry.count("scan.parsed")
    telemetry.observe("scan.file_seconds", time.monotonic() - started)
    return feature


def _build_chunk(
    chunk: list[tuple[ArchiveFile, str]]
) -> list[ScanOutcome]:
    """Process one chunk of pending files, preserving input order."""
    return [_build_feature(record, content_hash) for record, content_hash in chunk]


def _build_chunk_traced(
    chunk: list[tuple[ArchiveFile, str]]
) -> tuple[list[ScanOutcome], dict]:
    """One chunk under a fresh private registry; outcomes + its export.

    The traced unit both pool workers and the telemetry-enabled serial
    path run: because the accounting happens inside the same function
    either way, a parallel scan's merged counter totals equal a serial
    scan's by construction, not by coincidence.
    """
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        with telemetry.span("scan.chunk", files=len(chunk)):
            outcomes = _build_chunk(chunk)
    return outcomes, telemetry.export()


@dataclass(frozen=True, slots=True)
class ScanTarget:
    """One configured directory to scan."""

    directory: str
    pattern: str = "*"
    recursive: bool = True


@dataclass(slots=True)
class ScanArchive(Component):
    """The figure's first box."""

    targets: list[ScanTarget] = field(
        default_factory=lambda: [ScanTarget(directory="")]
    )
    extensions: tuple[str, ...] = ("csv", "cdl")
    remove_missing: bool = True
    #: Parse/extract parallelism: ``None`` -> ``os.cpu_count()``,
    #: ``1`` -> today's serial loop, no pool.
    workers: int | None = None
    #: Below this many changed files the pool is skipped even when
    #: ``workers`` allows one — worker startup would dominate.
    min_parallel_files: int = 32
    #: Bounded retry for transient archive reads and catalog writes.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    name = "scan-archive"

    def add_target(self, directory: str, pattern: str = "*") -> None:
        """Curator action: 'specifying an additional directory to scan'."""
        self.targets.append(
            ScanTarget(directory=directory, pattern=pattern, recursive=True)
        )

    def _matching_files(self, state: WranglingState) -> list[ArchiveFile]:
        seen: dict[str, ArchiveFile] = {}
        for target in self.targets:
            for record in state.fs.list_directory(
                target.directory, target.pattern, recursive=target.recursive
            ):
                if record.extension in self.extensions:
                    seen[record.path] = record
        return [seen[path] for path in sorted(seen)]

    def _resolved_workers(self, pending: int) -> int:
        if self.workers is None:
            resolved = os.cpu_count() or 1
        else:
            resolved = max(1, int(self.workers))
        return min(resolved, max(1, pending))

    def _build_features(
        self,
        pending: list[tuple[ArchiveFile, str]],
        report: ComponentReport,
    ) -> list[ScanOutcome]:
        """Parse + extract every pending file, preserving input order.

        A broken pool never aborts the scan: chunks whose future dies
        (``BrokenProcessPool`` and friends) are recomputed serially in
        the parent — ``_build_chunk`` is pure, so the degraded result is
        identical to what the worker would have returned.

        With telemetry active, every chunk (pooled, serial, or
        degraded-recomputed) runs the traced unit and its private
        registry is merged back here, in deterministic submission
        order — which is what makes parallel counter totals equal
        serial ones.
        """
        telemetry = get_telemetry()
        traced = telemetry.enabled

        def compute_local(chunk):
            if traced:
                outcomes, export = _build_chunk_traced(chunk)
                telemetry.merge_worker(export)
                return outcomes
            return _build_chunk(chunk)

        workers = self._resolved_workers(len(pending))
        if workers <= 1 or len(pending) < self.min_parallel_files:
            return compute_local(pending)
        # Chunked fan-out: a handful of chunks per worker amortizes IPC
        # per task while keeping the pool busy near the tail.  Futures
        # are collected in submission order, so the catalog batch below
        # is deterministic regardless of worker scheduling.
        chunksize = max(1, math.ceil(len(pending) / (workers * 4)))
        chunks = [
            pending[i : i + chunksize]
            for i in range(0, len(pending), chunksize)
        ]
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except Exception as exc:
            report.add_error(
                ErrorRecord(
                    code=ErrorCode.WORKER_CRASH,
                    message=f"cannot start worker pool ({exc}); "
                    "scanning serially",
                    transient=True,
                )
            )
            return compute_local(pending)
        degraded = 0
        results: list[ScanOutcome] = []
        worker_unit = _build_chunk_traced if traced else _build_chunk
        with pool:
            futures = []
            for chunk in chunks:
                try:
                    futures.append(pool.submit(worker_unit, chunk))
                except Exception:
                    futures.append(None)
            for chunk, future in zip(chunks, futures):
                if future is not None:
                    try:
                        value = future.result()
                    except Exception:
                        value = None
                    if value is not None:
                        if traced:
                            outcomes, export = value
                            telemetry.merge_worker(export)
                            results.extend(outcomes)
                        else:
                            results.extend(value)
                        continue
                degraded += 1
                results.extend(compute_local(chunk))
        if degraded:
            report.add_error(
                ErrorRecord(
                    code=ErrorCode.WORKER_CRASH,
                    message=f"worker pool failed; {degraded} of "
                    f"{len(chunks)} chunks recomputed serially",
                    transient=True,
                )
            )
        return results

    def _quarantine(
        self,
        state: WranglingState,
        report: ComponentReport,
        error: ErrorRecord,
        message: str | None = None,
    ) -> None:
        """Set one file aside with its typed error and keep going.

        Besides the report entry, each quarantine increments the
        ``scan.quarantined`` counter and lands in the trace as a
        ``scan.quarantine`` event span carrying the typed
        ``error_code`` — the contract the fault-injection suite holds
        the scan to.
        """
        state.quarantine.add(error.path or "", error)
        report.add_error(error, message)
        telemetry = get_telemetry()
        telemetry.count("scan.quarantined")
        telemetry.event(
            "scan.quarantine",
            path=error.path or "",
            error_code=error.code.value,
        )

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        telemetry = get_telemetry()

        def count_retry(attempt: int, exc: BaseException, pause: float) -> None:
            report.retries += 1

        try:
            with telemetry.span("scan.list"):
                files = retry_call(
                    lambda: self._matching_files(state),
                    self.retry,
                    key="scan:list",
                    on_retry=count_retry,
                )
        except Exception as exc:
            if not is_transient(exc):
                raise
            # Without a listing there is no safe notion of "present";
            # degrade to a no-op run rather than vanishing the catalog.
            report.add_error(
                classify_exception(exc, attempts=self.retry.attempts)
            )
            report.add("scan skipped: archive listing unavailable")
            telemetry.count("scan.listing_unavailable")
            return
        present = set()
        pending: list[tuple[ArchiveFile, str]] = []
        with telemetry.span("scan.select", files=len(files)):
            for listed in files:
                path = listed.path
                present.add(path)
                report.items_seen += 1
                try:
                    # Re-fetch through the archive so flaky storage
                    # faults at a well-defined, retryable read point;
                    # the archive's own record memoizes the hash across
                    # re-runs.
                    record = retry_call(
                        lambda p=path: state.fs.get(p),
                        self.retry,
                        key=path,
                        on_retry=count_retry,
                    )
                    content_hash = record.content_hash()
                except Exception as exc:
                    self._quarantine(
                        state,
                        report,
                        classify_exception(
                            exc,
                            path=path,
                            attempts=self.retry.attempts
                            if is_transient(exc)
                            else 1,
                        ),
                    )
                    continue
                if state.scanned_hashes.get(path) == content_hash:
                    report.items_skipped += 1
                    continue
                pending.append((record, content_hash))
        with telemetry.span("scan.extract", files=len(pending)):
            outcomes = self._build_features(pending, report)
        upserts: list[tuple[str, str, DatasetFeature]] = []
        for (record, content_hash), outcome in zip(pending, outcomes):
            if isinstance(outcome, FormatError):
                self._quarantine(
                    state,
                    report,
                    ErrorRecord(
                        code=ErrorCode.PARSE,
                        message=str(outcome),
                        path=record.path,
                    ),
                    message=f"parse error: {outcome}",
                )
                continue
            if isinstance(outcome, WorkerFailure):
                self._quarantine(
                    state,
                    report,
                    ErrorRecord(
                        code=ErrorCode.WORKER_ERROR,
                        message=str(outcome),
                        path=outcome.path,
                    ),
                )
                continue
            upserts.append((record.path, content_hash, outcome))
        if upserts:
            # One batch in path order: one transaction, one version bump.
            features = [feature for __, __, feature in upserts]
            try:
                with telemetry.span("scan.upsert", files=len(upserts)):
                    retry_call(
                        lambda: state.working.upsert_many(features),
                        self.retry,
                        key="scan:upsert",
                        on_retry=count_retry,
                    )
            except Exception as exc:
                if not is_transient(exc):
                    raise
                # Hashes stay unrecorded, so the whole batch is retried
                # on the next wrangle.
                report.add_error(
                    classify_exception(exc, attempts=self.retry.attempts)
                )
                report.add(
                    f"catalog write deferred: {len(upserts)} files will "
                    "be rescanned next run"
                )
            else:
                for path, content_hash, __ in upserts:
                    state.scanned_hashes[path] = content_hash
                    state.quarantine.resolve(path)
                report.changes += len(upserts)
        if self.remove_missing:
            # Catalog ids ARE archive paths: extract_feature sets
            # dataset_id = dataset.path = the scanned file's path (the
            # invariant is pinned by tests/test_scan_robustness.py), so
            # comparing ids against `present` paths is exact.
            vanished = [
                dataset_id
                for dataset_id in state.working.dataset_ids()
                if dataset_id not in present
            ]
            if vanished:
                try:
                    with telemetry.span(
                        "scan.remove", files=len(vanished)
                    ):
                        retry_call(
                            lambda: state.working.remove_many(vanished),
                            self.retry,
                            key="scan:remove",
                            on_retry=count_retry,
                        )
                except Exception as exc:
                    if not is_transient(exc):
                        raise
                    report.add_error(
                        classify_exception(exc, attempts=self.retry.attempts)
                    )
                    report.add(
                        f"catalog removal deferred: {len(vanished)} "
                        "vanished datasets remain until the next run"
                    )
                else:
                    for dataset_id in vanished:
                        state.scanned_hashes.pop(dataset_id, None)
                        report.add(f"removed vanished dataset {dataset_id}")
                    report.changes += len(vanished)
        # A quarantined path whose file disappeared can never be
        # repaired in place — close its entry.
        for path in state.quarantine.paths():
            if path not in present:
                state.quarantine.resolve(path)
        # Batch totals at the end (one lock acquisition each, instead of
        # one per file in the listing loop).
        telemetry.count("scan.seen", report.items_seen)
        telemetry.count("scan.skipped", report.items_skipped)
        telemetry.count("scan.changed", len(pending))
        telemetry.count("scan.retries", report.retries)
        report.add(
            f"scanned {report.items_seen} files, "
            f"{report.items_skipped} unchanged"
        )
        if len(state.quarantine):
            report.add(
                f"{len(state.quarantine)} files quarantined "
                "(retried on the next wrangle)"
            )

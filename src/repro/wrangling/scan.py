"""Scan-archive component.

"Scan archive — configure: directories, file types, naming conventions."
Parses every matching file once, extracts its feature and upserts it into
the working catalog.  Incremental by content hash: a re-run skips files
whose content is unchanged (this is what makes the poster's "running &
re-running process" cheap) and drops catalog entries whose files
disappeared from the scanned directories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.filesystem import ArchiveFile
from ..archive.formats import FormatError, parse_file
from ..catalog.store import DatasetNotFoundError
from ..core.features import extract_feature
from .component import Component, ComponentReport
from .state import WranglingState


@dataclass(frozen=True, slots=True)
class ScanTarget:
    """One configured directory to scan."""

    directory: str
    pattern: str = "*"
    recursive: bool = True


@dataclass(slots=True)
class ScanArchive(Component):
    """The figure's first box."""

    targets: list[ScanTarget] = field(
        default_factory=lambda: [ScanTarget(directory="")]
    )
    extensions: tuple[str, ...] = ("csv", "cdl")
    remove_missing: bool = True

    name = "scan-archive"

    def add_target(self, directory: str, pattern: str = "*") -> None:
        """Curator action: 'specifying an additional directory to scan'."""
        self.targets.append(
            ScanTarget(directory=directory, pattern=pattern, recursive=True)
        )

    def _matching_files(self, state: WranglingState) -> list[ArchiveFile]:
        seen: dict[str, ArchiveFile] = {}
        for target in self.targets:
            for record in state.fs.list_directory(
                target.directory, target.pattern, recursive=target.recursive
            ):
                if record.extension in self.extensions:
                    seen[record.path] = record
        return [seen[path] for path in sorted(seen)]

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        files = self._matching_files(state)
        present = set()
        for record in files:
            present.add(record.path)
            report.items_seen += 1
            content_hash = record.content_hash()
            if state.scanned_hashes.get(record.path) == content_hash:
                report.items_skipped += 1
                continue
            try:
                dataset = parse_file(record.content, record.path)
            except FormatError as exc:
                report.add(f"parse error: {exc}")
                continue
            feature = extract_feature(dataset, content_hash=content_hash)
            state.working.upsert(feature)
            state.scanned_hashes[record.path] = content_hash
            report.changes += 1
        if self.remove_missing:
            for dataset_id in state.working.dataset_ids():
                if dataset_id not in present:
                    try:
                        state.working.remove(dataset_id)
                    except DatasetNotFoundError:  # pragma: no cover
                        continue
                    state.scanned_hashes.pop(dataset_id, None)
                    report.changes += 1
                    report.add(f"removed vanished dataset {dataset_id}")
        report.add(
            f"scanned {report.items_seen} files, "
            f"{report.items_skipped} unchanged"
        )

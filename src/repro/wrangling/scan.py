"""Scan-archive component.

"Scan archive — configure: directories, file types, naming conventions."
Parses every matching file once, extracts its feature and upserts it into
the working catalog.  Incremental by content hash: a re-run skips files
whose content is unchanged (this is what makes the poster's "running &
re-running process" cheap) and drops catalog entries whose files
disappeared from the scanned directories.

This is the ingest fast path's entry point: parse + feature extraction
fan out over a chunked process pool (``workers``; ``None`` means one per
CPU, ``1`` keeps the exact serial path — parsing is pure python, so
threads would serialize on the GIL), while catalog writes stay ordered
by path and go through ``upsert_many``/``remove_many`` — one batch, one
transaction, one version bump.  Parallel and serial scans produce
identical catalogs by construction: workers only compute, and results
are applied in deterministic path order.  Batches smaller than
``min_parallel_files`` skip the pool entirely — spawning workers costs
more than parsing a handful of files.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..archive.filesystem import ArchiveFile
from ..archive.formats import FormatError, parse_file
from ..catalog.records import DatasetFeature
from ..core.features import extract_feature
from .component import Component, ComponentReport
from .state import WranglingState


def _build_feature(record: ArchiveFile, content_hash: str):
    """Worker unit: parse + extract one file.

    Returns the :class:`DatasetFeature`, or the :class:`FormatError` for
    unparseable content (errors are data here — they must be reported in
    path order, not raised out of an arbitrary worker).
    """
    try:
        dataset = parse_file(record.content, record.path)
    except FormatError as exc:
        return exc
    return extract_feature(dataset, content_hash=content_hash)


@dataclass(frozen=True, slots=True)
class ScanTarget:
    """One configured directory to scan."""

    directory: str
    pattern: str = "*"
    recursive: bool = True


@dataclass(slots=True)
class ScanArchive(Component):
    """The figure's first box."""

    targets: list[ScanTarget] = field(
        default_factory=lambda: [ScanTarget(directory="")]
    )
    extensions: tuple[str, ...] = ("csv", "cdl")
    remove_missing: bool = True
    #: Parse/extract parallelism: ``None`` -> ``os.cpu_count()``,
    #: ``1`` -> today's serial loop, no pool.
    workers: int | None = None
    #: Below this many changed files the pool is skipped even when
    #: ``workers`` allows one — worker startup would dominate.
    min_parallel_files: int = 32

    name = "scan-archive"

    def add_target(self, directory: str, pattern: str = "*") -> None:
        """Curator action: 'specifying an additional directory to scan'."""
        self.targets.append(
            ScanTarget(directory=directory, pattern=pattern, recursive=True)
        )

    def _matching_files(self, state: WranglingState) -> list[ArchiveFile]:
        seen: dict[str, ArchiveFile] = {}
        for target in self.targets:
            for record in state.fs.list_directory(
                target.directory, target.pattern, recursive=target.recursive
            ):
                if record.extension in self.extensions:
                    seen[record.path] = record
        return [seen[path] for path in sorted(seen)]

    def _resolved_workers(self, pending: int) -> int:
        if self.workers is None:
            resolved = os.cpu_count() or 1
        else:
            resolved = max(1, int(self.workers))
        return min(resolved, max(1, pending))

    def _build_features(
        self, pending: list[tuple[ArchiveFile, str]]
    ) -> list[DatasetFeature | FormatError]:
        """Parse + extract every pending file, preserving input order."""
        workers = self._resolved_workers(len(pending))
        if workers <= 1 or len(pending) < self.min_parallel_files:
            return [_build_feature(r, h) for r, h in pending]
        # Chunked fan-out: a handful of chunks per worker amortizes IPC
        # per task while keeping the pool busy near the tail.  ``map``
        # returns results in submission order, so the catalog batch
        # below is deterministic regardless of worker scheduling.
        chunksize = max(1, math.ceil(len(pending) / (workers * 4)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    _build_feature,
                    [record for record, __ in pending],
                    [content_hash for __, content_hash in pending],
                    chunksize=chunksize,
                )
            )

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        files = self._matching_files(state)
        present = set()
        pending: list[tuple[ArchiveFile, str]] = []
        for record in files:
            present.add(record.path)
            report.items_seen += 1
            content_hash = record.content_hash()
            if state.scanned_hashes.get(record.path) == content_hash:
                report.items_skipped += 1
                continue
            pending.append((record, content_hash))
        outcomes = self._build_features(pending)
        upserts: list[tuple[str, str, DatasetFeature]] = []
        for (record, content_hash), outcome in zip(pending, outcomes):
            if isinstance(outcome, FormatError):
                report.add(f"parse error: {outcome}")
                continue
            upserts.append((record.path, content_hash, outcome))
        if upserts:
            # One batch in path order: one transaction, one version bump.
            state.working.upsert_many(feature for __, __, feature in upserts)
            for path, content_hash, __ in upserts:
                state.scanned_hashes[path] = content_hash
            report.changes += len(upserts)
        if self.remove_missing:
            vanished = [
                dataset_id
                for dataset_id in state.working.dataset_ids()
                if dataset_id not in present
            ]
            if vanished:
                state.working.remove_many(vanished)
                for dataset_id in vanished:
                    state.scanned_hashes.pop(dataset_id, None)
                    report.add(f"removed vanished dataset {dataset_id}")
                report.changes += len(vanished)
        report.add(
            f"scanned {report.items_seen} files, "
            f"{report.items_skipped} unchanged"
        )

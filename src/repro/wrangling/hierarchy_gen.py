"""Generate-hierarchies component.

"Generate hierarchies — configure: levels, aggregation."  Builds the
concept hierarchy the search UI's menus and query expansion use: the
vocabulary's parent links, restricted to variables actually present in
the working catalog, with still-unresolved names parked under an
"unresolved" branch so the curator sees them, and taxonomy links
attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..archive.vocabulary import VOCABULARY
from ..hierarchy import (
    ConceptHierarchy,
    default_taxonomy_links,
    vocabulary_hierarchy,
)
from .component import Component, ComponentReport
from .state import WranglingState

UNRESOLVED_BRANCH = "unresolved"


@dataclass(slots=True)
class GenerateHierarchies(Component):
    """The figure's hierarchy box."""

    include_unresolved_branch: bool = True
    prune_absent: bool = True
    attach_taxonomies: bool = True
    max_depth: int | None = None  # "configure: levels"

    name = "generate-hierarchies"

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        present = set(state.working.variable_name_counts())
        report.items_seen = len(present)
        full = vocabulary_hierarchy()
        hierarchy = ConceptHierarchy()
        # Add vocabulary names present in the catalog, with their
        # ancestor chains (ancestors kept even when absent: they are the
        # menu's grouping levels).
        for name, __ in full.walk():
            if name in hierarchy:
                continue
            if self.prune_absent and name in present:
                chain = list(reversed(full.ancestors(name))) + [name]
                for link in chain:
                    if link not in hierarchy:
                        node = full.node(link)
                        hierarchy.add(
                            link,
                            parent=node.parent,
                            measurable=node.measurable,
                            description=node.description,
                        )
                        report.changes += 1
            elif not self.prune_absent:
                node = full.node(name)
                hierarchy.add(
                    name,
                    parent=node.parent,
                    measurable=node.measurable,
                    description=node.description,
                )
                report.changes += 1
        if self.max_depth is not None:
            hierarchy = hierarchy.flattened(self.max_depth)
        # Park unresolved names where the curator can find them.
        unresolved = sorted(
            name for name in present if name not in VOCABULARY
        )
        if unresolved and self.include_unresolved_branch:
            hierarchy.add(
                UNRESOLVED_BRANCH,
                parent=None,
                measurable=False,
                description="Names the wrangling process has not tamed",
            )
            for name in unresolved:
                hierarchy.add(name, parent=UNRESOLVED_BRANCH)
                report.changes += 1
        state.hierarchy = hierarchy
        if self.attach_taxonomies:
            state.taxonomy_links = default_taxonomy_links()
        report.add(
            f"{len(hierarchy)} nodes, {len(unresolved)} unresolved parked"
        )

"""Process-configuration serialization.

"Details of process different for each archive" — the chain composition,
scan targets, curated tables, context rules, ambiguity decisions and
discovered rules *are* the process.  Serializing them as one JSON
document lets curators version-control their process and reproduce a
wrangle on a fresh machine, which is what makes the poster's
run-improve-rerun loop durable.
"""

from __future__ import annotations

import json
from typing import Any

from ..refine.history import RuleSet
from ..semantics import (
    AbbreviationTable,
    AmbiguityAction,
    AmbiguityDecision,
    ContextRules,
    ExclusionPolicy,
    SynonymTable,
    TermResolver,
)
from .chain import ProcessChain, default_chain
from .scan import ScanArchive, ScanTarget
from .state import WranglingState

CONFIG_VERSION = 1


class ProcessConfigError(ValueError):
    """Raised when a process-configuration document is malformed."""


def dump_process_config(
    chain: ProcessChain, state: WranglingState, indent: int | None = 2
) -> str:
    """Serialize the process (chain config + curated knowledge) to JSON."""
    scan_targets: list[dict[str, Any]] = []
    scan_workers: int | None = None
    try:
        scan = chain.component("scan-archive")
        if isinstance(scan, ScanArchive):
            scan_targets = [
                {
                    "directory": target.directory,
                    "pattern": target.pattern,
                    "recursive": target.recursive,
                }
                for target in scan.targets
            ]
            scan_workers = scan.workers
    except Exception:
        pass
    resolver = state.resolver
    payload = {
        "format": "repro-process-config",
        "version": CONFIG_VERSION,
        "components": chain.names(),
        "scan_targets": scan_targets,
        "scan_workers": scan_workers,
        "synonyms": [
            [spelling, preferred] for spelling, preferred in resolver.synonyms
        ],
        "abbreviations": resolver.abbreviations.items(),
        "context_rules": [
            [bare, context, canonical]
            for (bare, context), canonical in sorted(
                resolver.context_rules.rules.items()
            )
        ],
        "exclusion_patterns": list(resolver.exclusion.patterns),
        "decisions": [
            {
                "name": d.name,
                "action": d.action.value,
                "canonical": d.canonical,
                "scope": d.scope,
            }
            for d in state.decisions
        ],
        "discovered_rules": (
            state.discovered_rules.to_json()
            if state.discovered_rules is not None
            else []
        ),
    }
    return json.dumps(payload, indent=indent)


def load_process_config(
    text: str, fs=None
) -> tuple[ProcessChain, WranglingState]:
    """Rebuild (chain, state) from a configuration document.

    ``fs`` is the archive filesystem the new state should wrangle; pass
    the target archive (it is not part of the configuration).

    Raises:
        ProcessConfigError: on wrong markers, versions or content.
    """
    from ..archive.filesystem import VirtualArchive

    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProcessConfigError(f"not JSON: {exc}")
    if not isinstance(payload, dict) or payload.get("format") != (
        "repro-process-config"
    ):
        raise ProcessConfigError("missing process-config format marker")
    if payload.get("version") != CONFIG_VERSION:
        raise ProcessConfigError(
            f"unsupported config version {payload.get('version')!r}"
        )

    synonyms = SynonymTable()
    for row in payload.get("synonyms", []):
        if not isinstance(row, list) or len(row) != 2:
            raise ProcessConfigError(f"bad synonym row {row!r}")
        spelling, preferred = row
        if spelling == preferred:
            synonyms.add(preferred)
        else:
            synonyms.add(preferred, spelling)

    abbreviations = AbbreviationTable()
    for row in payload.get("abbreviations", []):
        if not isinstance(row, list) or len(row) != 2:
            raise ProcessConfigError(f"bad abbreviation row {row!r}")
        abbreviations.add(row[0], row[1])

    context_rules = ContextRules(rules={})
    for row in payload.get("context_rules", []):
        if not isinstance(row, list) or len(row) != 3:
            raise ProcessConfigError(f"bad context rule {row!r}")
        context_rules.add(row[0], row[1], row[2])

    exclusion = ExclusionPolicy(
        patterns=list(payload.get("exclusion_patterns", []))
    )
    resolver = TermResolver(
        synonyms=synonyms,
        abbreviations=abbreviations,
        context_rules=context_rules,
        exclusion=exclusion,
    )

    decisions = [
        AmbiguityDecision(
            name=d["name"],
            action=AmbiguityAction(d["action"]),
            canonical=d.get("canonical"),
            scope=d.get("scope", ""),
        )
        for d in payload.get("decisions", [])
    ]

    rules_json = payload.get("discovered_rules", [])
    discovered = RuleSet.from_json(rules_json) if rules_json else None

    state = WranglingState(
        fs=fs if fs is not None else VirtualArchive(),
        resolver=resolver,
        decisions=decisions,
        discovered_rules=discovered,
    )

    scan_workers = payload.get("scan_workers")
    if scan_workers is not None and (
        not isinstance(scan_workers, int) or scan_workers < 1
    ):
        raise ProcessConfigError(f"bad scan_workers {scan_workers!r}")
    scan = ScanArchive(
        targets=[
            ScanTarget(
                directory=t["directory"],
                pattern=t.get("pattern", "*"),
                recursive=bool(t.get("recursive", True)),
            )
            for t in payload.get("scan_targets", [])
        ]
        or [ScanTarget(directory="")],
        workers=scan_workers,
    )
    chain = default_chain(scan=scan)
    # Honour the recorded component order where it names known
    # components; unknown names are a config error.
    known = {c.name for c in chain.components}
    for name in payload.get("components", []):
        if name not in known:
            raise ProcessConfigError(f"unknown component {name!r}")
    return chain, state

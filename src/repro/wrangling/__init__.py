"""The metadata wrangling process: composable components, chains,
validation."""

from .chain import (
    ChainCompositionError,
    ChainRunReport,
    ProcessChain,
    default_chain,
)
from .component import Component, ComponentReport
from .config_io import (
    ProcessConfigError,
    dump_process_config,
    load_process_config,
)
from .discover import (
    DiscoverTransformations,
    PerformDiscoveredTransformations,
)
from .external import AddExternalMetadata
from .hierarchy_gen import UNRESOLVED_BRANCH, GenerateHierarchies
from .known import PerformKnownTransformations
from .provenance import ProvenanceEvent, ProvenanceJournal
from .publish import Publish
from .scan import ScanArchive, ScanTarget
from .state import (
    DigestCache,
    PublishDelta,
    QuarantineEntry,
    QuarantineLog,
    WranglingState,
)
from .validate import (
    DEFAULT_CHECKS,
    AmbiguousRemaining,
    DirectoryFormatConsistency,
    ExpectedDatasets,
    SynonymCoverage,
    UnknownUnits,
    UnresolvedNames,
    ValidationCheck,
    ValidationFailure,
    ValidationReport,
    validate,
)

__all__ = [
    "AddExternalMetadata",
    "AmbiguousRemaining",
    "ChainCompositionError",
    "ChainRunReport",
    "Component",
    "ComponentReport",
    "DEFAULT_CHECKS",
    "DirectoryFormatConsistency",
    "DiscoverTransformations",
    "ExpectedDatasets",
    "GenerateHierarchies",
    "PerformDiscoveredTransformations",
    "PerformKnownTransformations",
    "ProcessChain",
    "ProcessConfigError",
    "ProvenanceEvent",
    "ProvenanceJournal",
    "Publish",
    "ScanArchive",
    "ScanTarget",
    "SynonymCoverage",
    "UNRESOLVED_BRANCH",
    "UnknownUnits",
    "UnresolvedNames",
    "ValidationCheck",
    "ValidationFailure",
    "ValidationReport",
    "DigestCache",
    "PublishDelta",
    "QuarantineEntry",
    "QuarantineLog",
    "WranglingState",
    "default_chain",
    "dump_process_config",
    "load_process_config",
    "validate",
]

"""Perform-known-transformations component.

"Perform known transformations — often exists as a translation table."
Applies the curated knowledge to the working catalog:

* synonym/abbreviation translation (the tables),
* unit-spelling normalization,
* source-context resolution of bare names,
* evidence-based clarification of ambiguous forms,
* curator ambiguity decisions (clarify/hide/leave),
* excessive-variable marking (exclude from search).

Everything the resolver cannot tame stays as written — "the mess that's
left" that discovery then attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..archive.vocabulary import VOCABULARY, preferred_unit
from ..semantics import AmbiguityAction, ResolutionMethod, UnitRegistry
from .component import Component, ComponentReport
from .state import WranglingState


@dataclass(slots=True)
class PerformKnownTransformations(Component):
    """The figure's translation-table box."""

    normalize_units: bool = True
    convert_units: bool = True  # cross-family conversion (degF -> degC)
    mark_excessive: bool = True
    apply_decisions: bool = True

    name = "known-transformations"

    @staticmethod
    def _convert_entry_units(entry, units: UnitRegistry) -> bool:
        """Convert an entry's statistics to its canonical unit when the
        source reported a convertible foreign unit (degF temperatures,
        knots wind).  Returns True when a conversion was applied."""
        var = VOCABULARY.get(entry.name)
        if var is None or entry.count == 0:
            return False
        current = units.normalize(entry.unit)
        target = var.unit
        if current == target or not units.convertible(current, target):
            return False
        lo = units.convert(entry.minimum, current, target)
        hi = units.convert(entry.maximum, current, target)
        entry.minimum, entry.maximum = min(lo, hi), max(lo, hi)
        entry.mean = units.convert(entry.mean, current, target)
        scale = abs(
            units.convert(1.0, current, target)
            - units.convert(0.0, current, target)
        )
        entry.stddev = entry.stddev * scale
        entry.unit = target
        return True

    def run(self, state: WranglingState, report: ComponentReport) -> None:
        resolver = state.resolver
        units = UnitRegistry()
        for dataset_id in state.working.dataset_ids():
            feature = state.working.get(dataset_id)
            touched = False
            for entry in feature.variables:
                report.items_seen += 1
                # Evidence-based resolution runs first; curator decisions
                # are the fallback for what evidence cannot tame.  This
                # ordering makes re-runs deterministic no matter *when*
                # a decision was added (a global HIDE never swallows
                # entries the evidence would have clarified anyway).
                resolution = resolver.resolve_entry(
                    entry, feature.platform, dataset_id
                )
                if resolution.resolved and resolution.canonical != entry.name:
                    entry.name = resolution.canonical
                    entry.resolution = resolution.method.value
                    report.changes += 1
                    touched = True
                elif not resolution.resolved and self.apply_decisions:
                    decision = self._decision_for(
                        state, dataset_id, entry.name
                    )
                    if decision is not None:
                        if decision.action is AmbiguityAction.CLARIFY:
                            if entry.name != decision.canonical:
                                entry.name = (
                                    decision.canonical or entry.name
                                )
                                entry.resolution = (
                                    ResolutionMethod.CURATOR.value
                                )
                                entry.ambiguous = False
                                touched = True
                                report.changes += 1
                        elif decision.action is AmbiguityAction.HIDE:
                            if not entry.excluded:
                                entry.excluded = True
                                entry.ambiguous = False
                                touched = True
                                report.changes += 1
                        else:  # LEAVE: flagged but untouched
                            if not entry.ambiguous:
                                entry.ambiguous = True
                                touched = True
                        resolution = None  # decision handled the entry
                if resolution is not None and resolution.ambiguous and not (
                    entry.ambiguous or entry.excluded
                ):
                    entry.ambiguous = True
                    touched = True
                if self.mark_excessive and resolution is not None:
                    auxiliary = resolution.auxiliary or (
                        resolution.canonical is None
                        and resolver.exclusion.is_auxiliary(entry.name)
                    )
                    if auxiliary and not entry.excluded:
                        entry.excluded = True
                        report.changes += 1
                        touched = True
                if self.normalize_units:
                    normalized = preferred_unit(entry.unit)
                    if normalized != entry.unit:
                        entry.unit = normalized
                        report.changes += 1
                        touched = True
                if self.convert_units and self._convert_entry_units(
                    entry, units
                ):
                    report.changes += 1
                    touched = True
                context = resolver.context_rules.context_of_platform(
                    feature.platform
                )
                if entry.context != context:
                    entry.context = context
                    touched = True
            if touched:
                state.working.upsert(feature)
        report.add(f"resolved entries across {len(state.working)} datasets")

    @staticmethod
    def _decision_for(state: WranglingState, dataset_id: str, name: str):
        for decision in state.decisions:
            if decision.name == name and decision.applies_to(dataset_id):
                return decision
        return None

"""Curatorial activities: sessions, actions, the simulated curator."""

from .actions import (
    AddAbbreviation,
    AddContextRule,
    AddExclusionPattern,
    AddScanTarget,
    AddSynonym,
    CuratorAction,
    CuratorActionError,
    DecideAmbiguity,
    MoveHierarchyNode,
)
from .session import CuratorSession, IterationRecord
from .simulated import LoopResult, SimulatedCurator, run_curator_loop

__all__ = [
    "AddAbbreviation",
    "AddContextRule",
    "AddExclusionPattern",
    "AddScanTarget",
    "AddSynonym",
    "CuratorAction",
    "CuratorActionError",
    "CuratorSession",
    "DecideAmbiguity",
    "IterationRecord",
    "LoopResult",
    "MoveHierarchyNode",
    "SimulatedCurator",
    "run_curator_loop",
]

"""Curator actions: the concrete edits of activity 3, "improving process".

The poster's examples — "modifying a hierarchy; adding entries to a
synonym table; specifying an additional directory to scan" — plus the
ambiguity decisions the Table's row 5 calls for.  Every action is a
replayable record: applying one mutates the chain/state and the action
log becomes process provenance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..semantics import AmbiguityAction, AmbiguityDecision
from ..wrangling.chain import ProcessChain
from ..wrangling.scan import ScanArchive
from ..wrangling.state import WranglingState


class CuratorActionError(ValueError):
    """Raised when an action cannot be applied."""


class CuratorAction(ABC):
    """One replayable curator edit."""

    @abstractmethod
    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        """Apply and return a one-line provenance message."""


@dataclass(frozen=True, slots=True)
class AddSynonym(CuratorAction):
    """'Adding entries to a synonym table.'

    ``preferred == alternate`` registers a self-resolving preferred term
    — how a curator acknowledges a harvested name that is deliberately
    kept as-is (e.g. a hidden housekeeping column), so the
    synonym-coverage check passes.
    """

    preferred: str
    alternate: str

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        if self.preferred == self.alternate:
            state.resolver.synonyms.add(self.preferred)
            return f"synonym: {self.preferred!r} registered as preferred"
        state.resolver.synonyms.add(self.preferred, self.alternate)
        return f"synonym: {self.alternate!r} -> {self.preferred!r}"


@dataclass(frozen=True, slots=True)
class AddAbbreviation(CuratorAction):
    """Register an abbreviation expansion."""

    abbreviation: str
    canonical: str

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        state.resolver.abbreviations.add(self.abbreviation, self.canonical)
        # Keep the synonym table in sync so coverage validation passes.
        state.resolver.synonyms.add(self.canonical, self.abbreviation)
        return f"abbreviation: {self.abbreviation!r} -> {self.canonical!r}"


@dataclass(frozen=True, slots=True)
class AddScanTarget(CuratorAction):
    """'Specifying an additional directory to scan.'"""

    directory: str
    pattern: str = "*"

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        scan = chain.component("scan-archive")
        if not isinstance(scan, ScanArchive):  # pragma: no cover
            raise CuratorActionError("chain has no ScanArchive component")
        scan.add_target(self.directory, self.pattern)
        return f"scan target added: {self.directory!r} ({self.pattern})"


@dataclass(frozen=True, slots=True)
class DecideAmbiguity(CuratorAction):
    """A row-5 decision: clarify, hide or leave an ambiguous name."""

    name: str
    action: AmbiguityAction
    canonical: str | None = None
    scope: str = ""

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        decision = AmbiguityDecision(
            name=self.name,
            action=self.action,
            canonical=self.canonical,
            scope=self.scope,
        )
        state.decisions.append(decision)
        target = f" -> {self.canonical!r}" if self.canonical else ""
        scope = f" in {self.scope!r}" if self.scope else ""
        return f"ambiguity: {self.name!r} {self.action.value}{target}{scope}"


@dataclass(frozen=True, slots=True)
class MoveHierarchyNode(CuratorAction):
    """'Modifying a hierarchy': re-parent a concept node."""

    node: str
    new_parent: str | None

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        if state.hierarchy is None:
            raise CuratorActionError("no hierarchy generated yet")
        state.hierarchy.move(self.node, self.new_parent)
        return f"hierarchy: moved {self.node!r} under {self.new_parent!r}"


@dataclass(frozen=True, slots=True)
class AddExclusionPattern(CuratorAction):
    """Extend the excessive-variable policy with a name pattern."""

    pattern: str

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        state.resolver.exclusion.add_pattern(self.pattern)
        return f"exclusion pattern added: {self.pattern!r}"


@dataclass(frozen=True, slots=True)
class AddContextRule(CuratorAction):
    """Teach the context rules a new (bare name, context) resolution."""

    bare: str
    context: str
    canonical: str

    def apply(self, chain: ProcessChain, state: WranglingState) -> str:
        state.resolver.context_rules.add(
            self.bare, self.context, self.canonical
        )
        return (
            f"context rule: ({self.bare!r}, {self.context!r}) -> "
            f"{self.canonical!r}"
        )

"""A simulated curator for closed-loop experiments.

The poster's process has a human in the loop; benchmark C1 needs the
loop closed programmatically.  :class:`SimulatedCurator` reads the
validation report and proposes the actions a careful curator would:

* synonym-coverage failures -> add the written form as an alternate of
  the name it currently resolves to (when it resolved at all),
* ambiguity flags with evidence -> clarify; evidently non-physical
  columns (dimensionless, integer-stepped) -> hide; otherwise consult
  the optional *oracle* (stand-in for the scientist who knows the
  archive) or leave flagged,
* unresolved names -> consult the oracle, else leave for discovery.

``actions_per_iteration`` caps the work per turn, which is what makes
the convergence curve gradual and measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.vocabulary import VOCABULARY
from ..semantics import AmbiguityAction
from .actions import AddSynonym, CuratorAction, DecideAmbiguity
from .session import CuratorSession


@dataclass(slots=True)
class SimulatedCurator:
    """A deterministic curator policy."""

    actions_per_iteration: int = 10
    oracle: dict[str, str | None] | None = None  # written name -> canonical
    hide_phantoms: bool = True

    def propose(self, session: CuratorSession) -> list[CuratorAction]:
        """Actions for the next improvement turn (capped)."""
        actions: list[CuratorAction] = []
        proposed_synonyms: set[str] = set()

        # 1. Ambiguity decisions first: they unlock renames.
        proposed_decisions: set[tuple[str, str]] = set()
        for finding in session.ambiguous_findings():
            if len(actions) >= self.actions_per_iteration:
                return actions
            if self._already_decided(session, finding):
                continue
            key = (finding.name, finding.dataset_id)
            if key in proposed_decisions:
                continue
            proposed_decisions.add(key)
            if finding.suggested is not None:
                actions.append(
                    DecideAmbiguity(
                        name=finding.name,
                        action=AmbiguityAction.CLARIFY,
                        canonical=finding.suggested,
                        scope=finding.dataset_id,
                    )
                )
                continue
            oracle_answer = (
                self.oracle.get(finding.name, "absent")
                if self.oracle is not None
                else "absent"
            )
            if oracle_answer is None and self.hide_phantoms:
                # The scientist says: not an environmental variable.
                # HIDE is global, so dedupe on the name alone.
                if (finding.name, "") in proposed_decisions:
                    continue
                proposed_decisions.add((finding.name, ""))
                actions.append(
                    DecideAmbiguity(
                        name=finding.name, action=AmbiguityAction.HIDE
                    )
                )
            elif isinstance(oracle_answer, str) and oracle_answer in VOCABULARY:
                actions.append(
                    DecideAmbiguity(
                        name=finding.name,
                        action=AmbiguityAction.CLARIFY,
                        canonical=oracle_answer,
                        scope=finding.dataset_id,
                    )
                )
            # else: leave flagged this turn.

        # 2. Grow the synonym table from names that already resolved, so
        #    coverage validation passes and future scans resolve directly.
        for written, current in session.uncovered_written_names():
            if len(actions) >= self.actions_per_iteration:
                return actions
            if written in proposed_synonyms:
                continue
            if current in VOCABULARY:
                actions.append(
                    AddSynonym(preferred=current, alternate=written)
                )
                proposed_synonyms.add(written)
                continue
            oracle_answer = (
                self.oracle.get(written, "absent")
                if self.oracle is not None
                else "absent"
            )
            if isinstance(oracle_answer, str) and oracle_answer in VOCABULARY:
                actions.append(
                    AddSynonym(preferred=oracle_answer, alternate=written)
                )
                proposed_synonyms.add(written)
            elif self._hidden_by_decision(session, written):
                # Deliberately hidden name: acknowledge it in the table
                # so synonym-coverage validation passes.
                actions.append(
                    AddSynonym(preferred=written, alternate=written)
                )
                proposed_synonyms.add(written)

        # 3. Unresolved current names: ask the oracle.
        for name in session.unresolved_names():
            if len(actions) >= self.actions_per_iteration:
                return actions
            oracle_answer = (
                self.oracle.get(name) if self.oracle is not None else None
            )
            if isinstance(oracle_answer, str) and oracle_answer in VOCABULARY:
                actions.append(
                    AddSynonym(preferred=oracle_answer, alternate=name)
                )
        return actions

    @staticmethod
    def _hidden_by_decision(session: CuratorSession, name: str) -> bool:
        return any(
            d.name == name and d.action is AmbiguityAction.HIDE
            for d in session.state.decisions
        )

    @staticmethod
    def _already_decided(session: CuratorSession, finding) -> bool:
        """A decision counts only when its scope covers the finding's
        dataset — a clarification for one dataset must not suppress the
        same name elsewhere."""
        return any(
            d.name == finding.name and d.applies_to(finding.dataset_id)
            for d in session.state.decisions
        )


@dataclass(slots=True)
class LoopResult:
    """Outcome of a full closed loop."""

    iterations_run: int
    failure_counts: list[int] = field(default_factory=list)
    actions_per_turn: list[int] = field(default_factory=list)
    converged: bool = False


def run_curator_loop(
    session: CuratorSession,
    curator: SimulatedCurator,
    max_iterations: int = 10,
) -> LoopResult:
    """Run run->validate->improve until validation passes or actions dry
    up (the poster's activities 2-4 as a loop)."""
    result = LoopResult(iterations_run=0)
    for __ in range(max_iterations):
        record = session.run()
        result.iterations_run += 1
        result.failure_counts.append(record.failure_count)
        if record.validation.ok:
            result.converged = True
            result.actions_per_turn.append(0)
            break
        actions = curator.propose(session)
        result.actions_per_turn.append(len(actions))
        if not actions:
            break
        session.improve(actions)
    return result

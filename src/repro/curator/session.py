"""The curator session: the four major curatorial activities as an API.

1. *Creating* the wrangling process from composable components
   (:meth:`CuratorSession.compose` or the default chain),
2. *Running & re-running* it (:meth:`run`),
3. *Improving* it by applying :class:`~repro.curator.actions.CuratorAction`
   records (:meth:`improve`),
4. *Validating* results (:meth:`validate`).

The session keeps the action log and per-iteration metrics, which is
what the curator-loop benchmark (C1) plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..archive.filesystem import VirtualArchive
from ..semantics import AmbiguityFinding, analyze_ambiguity
from ..wrangling.chain import ChainRunReport, ProcessChain, default_chain
from ..wrangling.state import WranglingState
from ..wrangling.validate import ValidationCheck, ValidationReport, validate
from .actions import CuratorAction


@dataclass(slots=True)
class IterationRecord:
    """One run-improve-validate loop turn."""

    iteration: int
    run_report: ChainRunReport
    validation: ValidationReport
    actions_applied: list[str] = field(default_factory=list)

    @property
    def failure_count(self) -> int:
        """Validation failures after this iteration's run."""
        return len(self.validation.failures)


class CuratorSession:
    """Drives one archive's wrangling process over many iterations."""

    def __init__(
        self,
        fs: VirtualArchive,
        chain: ProcessChain | None = None,
        state: WranglingState | None = None,
        checks: list[ValidationCheck] | None = None,
    ) -> None:
        self.state = state or WranglingState(fs=fs)
        self.chain = chain or default_chain()
        self.checks = checks
        self.iterations: list[IterationRecord] = []
        self.action_log: list[str] = []

    # -- activity 1: composing -------------------------------------------------

    def compose(self, chain: ProcessChain) -> None:
        """Replace the process chain (activity 1)."""
        self.chain = chain

    # -- activity 2: running ----------------------------------------------------

    def run(self) -> IterationRecord:
        """Run the chain once and validate; records the iteration."""
        run_report = self.chain.run(self.state)
        validation = self.validate()
        record = IterationRecord(
            iteration=len(self.iterations) + 1,
            run_report=run_report,
            validation=validation,
        )
        self.iterations.append(record)
        return record

    # -- activity 3: improving ----------------------------------------------------

    def improve(self, actions: list[CuratorAction]) -> list[str]:
        """Apply improvement actions; returns provenance messages.

        Messages also land on the latest iteration record (if any) and
        the session log.
        """
        messages = []
        for action in actions:
            message = action.apply(self.chain, self.state)
            messages.append(message)
            self.action_log.append(message)
        if self.iterations:
            self.iterations[-1].actions_applied.extend(messages)
        return messages

    # -- activity 4: validating -----------------------------------------------------

    def validate(self) -> ValidationReport:
        """Validate the current working catalog."""
        return validate(self.state, checks=self.checks)

    # -- inspection helpers ------------------------------------------------------------

    def unresolved_names(self) -> list[str]:
        """Current variable names that failed to resolve (sorted)."""
        from ..archive.vocabulary import VOCABULARY

        out = set()
        for __, entry in self.state.working.iter_variables():
            if entry.name not in VOCABULARY and not entry.excluded:
                out.add(entry.name)
        return sorted(out)

    def ambiguous_findings(self) -> list[AmbiguityFinding]:
        """Ambiguity analyses for every still-flagged variable."""
        findings = []
        for feature in self.state.working:
            for entry in feature.variables:
                if not entry.ambiguous:
                    continue
                finding = analyze_ambiguity(
                    feature.dataset_id,
                    feature.platform,
                    entry,
                    self.state.resolver.context_rules,
                )
                if finding is not None:
                    findings.append(finding)
        return findings

    def uncovered_written_names(self) -> list[tuple[str, str]]:
        """(written name, current name) pairs where the written form is
        missing from the synonym table (synonym-coverage failures)."""
        out = {}
        for __, entry in self.state.working.iter_variables():
            if not self.state.resolver.synonyms.contains(entry.written_name):
                out[entry.written_name] = entry.name
        return sorted(out.items())

    @property
    def failure_history(self) -> list[int]:
        """Validation failure count per iteration (the C1 curve)."""
        return [record.failure_count for record in self.iterations]

"""Taming the Metadata Mess — a reproduction of Megler (2013).

A metadata wrangling and ranked-search system for scientific data
archives, after the *Data Near Here* project:

* ``repro.archive``   — synthetic CMOP-like archive + semantic-mess injector
* ``repro.catalog``   — the metadata catalog (memory + SQLite stores, indexes)
* ``repro.core``      — features, distance-based ranking, search, summaries
* ``repro.semantics`` — the seven semantic-diversity categories, tamed
* ``repro.hierarchy`` — concept hierarchies and taxonomy links
* ``repro.refine``    — Google Refine substrate (GREL, ops, clustering, JSON)
* ``repro.wrangling`` — the composable metadata processing chain
* ``repro.curator``   — curatorial activities, incl. a simulated curator
* ``repro.obs``       — telemetry: tracing spans, metrics, JSONL traces
* ``repro.ui``        — search-page and summary-page renderers

Quickstart::

    from repro import DataNearHere, Query, VariableTerm, GeoPoint
    from repro.archive import messy_archive_fixture

    fs, truth, archive = messy_archive_fixture()
    system = DataNearHere(fs)
    system.wrangle()
    hits = system.search(Query(
        location=GeoPoint(45.5, -124.4),
        variables=[VariableTerm("water_temperature", low=5, high=10)],
    ))
"""

from .core.qparser import QueryParseError, parse_query
from .core.query import Query, VariableTerm
from .core.scoring import ScoringConfig
from .core.search import (
    BooleanSearchEngine,
    SearchEngine,
    SearchResult,
    SearchResults,
)
from .geo import BoundingBox, GeoPoint, TimeInterval
from .obs import Telemetry, get_telemetry, use_telemetry
from .system import DataNearHere, NotWrangledError

__version__ = "1.0.0"

__all__ = [
    "BoundingBox",
    "BooleanSearchEngine",
    "DataNearHere",
    "GeoPoint",
    "NotWrangledError",
    "Query",
    "QueryParseError",
    "ScoringConfig",
    "SearchEngine",
    "SearchResult",
    "SearchResults",
    "Telemetry",
    "TimeInterval",
    "VariableTerm",
    "__version__",
    "get_telemetry",
    "parse_query",
    "use_telemetry",
]

"""Command-line interface: generate, wrangle, search, validate, summarize.

The production shape of the system as an operator sees it::

    python -m repro generate ./archive --datasets 60 --mess 0.3
    python -m repro wrangle  ./archive --catalog catalog.db
    python -m repro search   catalog.db "near 45.5, -124.4 in mid-2010 \
        with temperature between 5 and 10"
    python -m repro serve-bench catalog.db --clients 8 --think-ms 5
    python -m repro summary  catalog.db stations/saturn01/saturn01_2009.csv
    python -m repro validate ./archive
    python -m repro menu     catalog.db

Every command prints to stdout and returns a process exit code, so the
functions are directly testable.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from . import __version__
from .archive import (
    ArchiveSpec,
    VirtualArchive,
    generate_archive,
    inject_mess,
    render_archive,
    uniform_mess_spec,
)
from .catalog import SqliteCatalog
from .core import SearchEngine
from .core.qparser import QueryParseError, parse_query
from .core.summary import summarize
from .hierarchy import vocabulary_hierarchy
from .obs import Telemetry, use_telemetry, write_trace
from .system import DataNearHere
from .ui import (
    render_search_text,
    render_span_tree,
    render_summary_text,
    render_telemetry_report,
)
from .wrangling import WranglingState, default_chain, validate
from .wrangling.scan import ScanArchive


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Taming the Metadata Mess — wrangle and search "
        "scientific data archives",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="write a synthetic messy archive to a directory"
    )
    generate.add_argument("directory")
    generate.add_argument("--datasets", type=int, default=30)
    generate.add_argument("--mess", type=float, default=None,
                          help="uniform mess rate in [0,1] "
                          "(default: the mixed default rates)")
    generate.add_argument("--seed", type=int, default=7)

    wrangle = sub.add_parser(
        "wrangle", help="scan + wrangle an archive directory into a "
        "SQLite catalog"
    )
    wrangle.add_argument("directory")
    wrangle.add_argument("--catalog", default="metadata_catalog.db")
    wrangle.add_argument(
        "--config", default=None,
        help="load a saved process configuration (JSON) before wrangling",
    )
    wrangle.add_argument(
        "--save-config", default=None,
        help="write the process configuration (JSON) after wrangling",
    )
    wrangle.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parse/extract parallelism for the archive scan "
        "(default: one per CPU; 1 forces the serial path)",
    )
    wrangle.add_argument(
        "--timings", action="store_true",
        help="print the span-tree timing breakdown for the wrangling run",
    )
    wrangle.add_argument(
        "--stats", action="store_true",
        help="print the full telemetry report (span tree, counters, "
        "latency histograms) after the run",
    )
    wrangle.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the run's telemetry trace to FILE as JSONL "
        "(validate with 'python -m repro.obs FILE')",
    )
    wrangle.add_argument(
        "--show-quarantine", action="store_true",
        help="print the quarantine report (files the scan set aside, "
        "with typed reasons) after the run",
    )

    search = sub.add_parser(
        "search", help="ranked search over a published catalog"
    )
    search.add_argument("catalog")
    search.add_argument("query", help="query text, e.g. "
                        "'near 45.5, -124.4 with salinity'")
    search.add_argument("--limit", type=int, default=10)
    search.add_argument(
        "--repeat", type=int, default=1,
        help="issue the query N times (exercises the query cache)",
    )
    search.add_argument(
        "--stats", action="store_true",
        help="print engine statistics (cache hits/misses, index state) "
        "and the telemetry report",
    )
    search.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the search telemetry trace to FILE as JSONL",
    )

    serve = sub.add_parser(
        "serve",
        help="serve ranked search over HTTP "
        "(GET /search, /healthz, /telemetry)",
    )
    serve.add_argument("catalog")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--concurrency", type=int, default=4,
        help="max concurrent requests (default 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="admitted requests allowed to wait (default 16)",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=None,
        help="threads for sharded scoring (default: serial scoring)",
    )
    serve.add_argument(
        "--shard-threshold", type=int, default=1024,
        help="candidate count above which scoring shards (default 1024)",
    )
    serve.add_argument(
        "--score-workers", type=int, default=None,
        help="scoring worker processes sharing the frozen snapshot "
        "(default: in-process scoring)",
    )
    serve.add_argument(
        "--drain-seconds", type=float, default=5.0,
        help="graceful drain budget on shutdown (default 5)",
    )
    serve.add_argument(
        "--max-seconds", type=float, default=None,
        help="exit (gracefully) after N seconds — smoke tests/CI",
    )
    serve.add_argument(
        "--refresh-seconds", type=float, default=None,
        help="poll the catalog every N seconds and refresh the engine "
        "when its version changed (default: no polling)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="FILE",
        help="write one JSONL access event per request to FILE "
        "(schema-validated by `python -m repro.obs`)",
    )
    serve.add_argument(
        "--flight-out", default=None, metavar="FILE",
        help="dump the slow-query flight recorder to FILE (JSON) "
        "on shutdown",
    )
    serve.add_argument(
        "--slo-p95-ms", type=float, default=500.0,
        help="SLO target: p95 latency, milliseconds (default 500)",
    )
    serve.add_argument(
        "--slo-error-rate", type=float, default=0.01,
        help="SLO target: tolerated error fraction (default 0.01)",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=0.99,
        help="SLO target: answered-request fraction (default 0.99)",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="closed-loop load benchmark against the concurrent "
        "search service",
    )
    serve_bench.add_argument("catalog")
    serve_bench.add_argument(
        "--query", action="append", default=None, metavar="TEXT",
        help="workload query text (repeatable; default: a mix derived "
        "from the catalog's variables and coverage)",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=4,
        help="number of closed-loop client threads (default 4)",
    )
    serve_bench.add_argument(
        "--requests", type=int, default=25,
        help="requests per client (default 25)",
    )
    serve_bench.add_argument(
        "--think-ms", type=float, default=0.0,
        help="per-client think time between requests, milliseconds",
    )
    serve_bench.add_argument(
        "--zipf", type=float, default=1.1,
        help="Zipf skew of query selection (0 = uniform; default 1.1)",
    )
    serve_bench.add_argument("--limit", type=int, default=10)
    serve_bench.add_argument(
        "--concurrency", type=int, default=4,
        help="service max concurrent requests (default 4)",
    )
    serve_bench.add_argument(
        "--queue-depth", type=int, default=16,
        help="admitted requests allowed to wait (default 16)",
    )
    serve_bench.add_argument(
        "--shard-workers", type=int, default=None,
        help="threads for sharded scoring (default: serial scoring)",
    )
    serve_bench.add_argument(
        "--shard-threshold", type=int, default=1024,
        help="candidate count above which scoring shards (default 1024)",
    )
    serve_bench.add_argument(
        "--score-workers", type=int, default=None,
        help="scoring worker processes for the service "
        "(default: in-process scoring)",
    )
    serve_bench.add_argument(
        "--http", action="store_true",
        help="drive the workload over a local HTTP server (socket "
        "mode) instead of in-process calls",
    )
    serve_bench.add_argument("--seed", type=int, default=0)

    summary = sub.add_parser(
        "summary", help="show one dataset's summary page"
    )
    summary.add_argument("catalog")
    summary.add_argument("dataset_id")

    check = sub.add_parser(
        "validate", help="run the curatorial validation checks on an "
        "archive directory"
    )
    check.add_argument("directory")

    menu = sub.add_parser(
        "menu", help="print the hierarchical variable menu of a catalog"
    )
    menu.add_argument("catalog")

    export = sub.add_parser(
        "export", help="dump a catalog to interchange JSON"
    )
    export.add_argument("catalog")
    export.add_argument("output", help="JSON file path ('-' for stdout)")

    facets = sub.add_parser(
        "facets", help="print the search sidebar facet counts"
    )
    facets.add_argument("catalog")

    report = sub.add_parser(
        "report", help="print the catalog health report"
    )
    report.add_argument("catalog")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    share = args.datasets / 30.0
    spec = ArchiveSpec(
        stations=max(1, round(8 * share)),
        cruises=max(1, round(6 * share)),
        casts=max(1, round(10 * share)),
        gliders=max(1, round(3 * share)),
        met_stations=max(1, round(3 * share)),
        seed=args.seed,
    )
    archive = generate_archive(spec)
    if args.mess is None:
        inject_mess(archive)
    else:
        if not 0.0 <= args.mess <= 1.0:
            print("error: --mess must lie in [0, 1]", file=sys.stderr)
            return 2
        inject_mess(archive, uniform_mess_spec(args.mess, seed=args.seed))
    fs, __ = render_archive(archive)
    count = fs.export_to(args.directory)
    print(f"wrote {count} files ({len(archive.datasets)} datasets) "
          f"under {args.directory}")
    return 0


def _cmd_wrangle(args: argparse.Namespace) -> int:
    from .wrangling import (
        ProcessConfigError,
        dump_process_config,
        load_process_config,
    )

    fs = VirtualArchive.import_from(args.directory)
    if len(fs) == 0:
        print(f"error: no files under {args.directory}", file=sys.stderr)
        return 2
    published = SqliteCatalog(args.catalog)
    system = DataNearHere(fs, published=published)
    if args.config is not None:
        try:
            with open(args.config, "r", encoding="utf-8") as fh:
                chain, state = load_process_config(fh.read(), fs=fs)
        except (OSError, ProcessConfigError) as exc:
            print(f"error: cannot load config: {exc}", file=sys.stderr)
            published.close()
            return 2
        state.published = published
        system.chain = chain
        system.state = state
        print(f"loaded process config from {args.config}")
    if args.workers is not None:
        if args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            published.close()
            return 2
        # After any --config load, so the flag wins over the saved value.
        system.set_scan_workers(args.workers)
    report = system.wrangle()
    snapshot = system.telemetry_snapshot()
    if args.timings:
        print(
            f"wrangle run #{report.run_number}: "
            f"{report.total_changes} changes in "
            f"{report.duration_seconds:.3f}s"
        )
        print(render_span_tree(snapshot))
    else:
        print(
            f"wrangle run #{report.run_number}: "
            f"{report.total_changes} changes in "
            f"{report.duration_seconds:.3f}s "
            f"(--timings for the span-tree breakdown)"
        )
    print()
    print("validation:", system.validate().summary())
    if args.show_quarantine:
        print()
        print(system.quarantine_report())
    elif len(system.quarantine):
        print()
        print(
            f"quarantine: {len(system.quarantine)} files set aside "
            "(--show-quarantine for details)"
        )
    if args.stats:
        print()
        print(render_telemetry_report(snapshot))
    if args.trace_out is not None:
        events = write_trace(snapshot, args.trace_out)
        print()
        print(f"trace: {events} events written to {args.trace_out}")
    print()
    print(f"published {len(published)} datasets to {args.catalog}")
    if args.save_config is not None:
        with open(args.save_config, "w", encoding="utf-8") as fh:
            fh.write(dump_process_config(system.chain, system.state))
        print(f"process config saved to {args.save_config}")
    published.close()
    return 0


def _open_catalog(path: str) -> SqliteCatalog | None:
    catalog = SqliteCatalog(path)
    if len(catalog) == 0:
        print(f"error: catalog {path!r} is empty (run 'wrangle' first)",
              file=sys.stderr)
        catalog.close()
        return None
    return catalog


def _cmd_search(args: argparse.Namespace) -> int:
    if args.limit < 1:
        print("error: --limit must be >= 1", file=sys.stderr)
        return 2
    try:
        query = parse_query(args.query)
    except QueryParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        engine = SearchEngine(catalog, hierarchy=vocabulary_hierarchy())
        if getattr(catalog, "prefilter_mode", "none") == "none":
            # No SQL pushdown available (e.g. a JSON-loaded memory
            # catalog): build the in-memory candidate indexes instead.
            engine.build_indexes()
        repeats = max(1, args.repeat)
        for __ in range(repeats):
            results = engine.search(query, limit=args.limit)
    print(render_search_text(query, results))
    if args.stats:
        stats = engine.stats()
        cache = stats["cache"]
        print()
        print(
            f"engine: catalog v{stats['catalog_version']} "
            f"({stats['catalog_size']} datasets), "
            f"indexes {'current' if stats['indexes_current'] else 'stale'}"
        )
        print(
            f"scan:   columnar {'on' if stats['columnar'] else 'off'}, "
            f"prefilter pushdown {stats['prefilter_mode']}"
        )
        print(
            f"cache:  {cache['hits']} hits / {cache['misses']} misses "
            f"/ {cache['evictions']} evictions "
            f"(hit rate {cache['hit_rate']:.2f}, "
            f"{cache['size']}/{cache['maxsize']} entries)"
        )
        print()
        print(render_telemetry_report(telemetry.snapshot()))
    if args.trace_out is not None:
        events = write_trace(telemetry.snapshot(), args.trace_out)
        print()
        print(f"trace: {events} events written to {args.trace_out}")
    catalog.close()
    return 0


def _default_workload(catalog) -> list:
    """A query mix derived from the catalog itself.

    A few variable-only queries over the most common names (the cache
    favourites), plus located queries at dataset bbox centres (the
    index-pruned tail) — enough modality spread to exercise scoring,
    pruning and the cache without the operator hand-writing a workload.
    """
    from .core.query import Query, VariableTerm
    from .geo import GeoPoint

    names = [
        name
        for name, __ in catalog.variable_name_counts().most_common(3)
    ]
    queries = [
        Query(variables=(VariableTerm(name=name),)) for name in names
    ]
    var_terms = (
        (VariableTerm(name=names[0]),) if names else ()
    )
    for dataset_id in catalog.dataset_ids()[:5]:
        feature = catalog.get(dataset_id)
        bbox = feature.bbox
        queries.append(
            Query(
                location=GeoPoint(
                    (bbox.min_lat + bbox.max_lat) / 2.0,
                    (bbox.min_lon + bbox.max_lon) / 2.0,
                ),
                radius_km=100.0,
                interval=feature.interval,
                variables=var_terms,
            )
        )
    return queries


def _default_workload_texts(catalog) -> list[str]:
    """The textual twin of :func:`_default_workload` for socket mode —
    HTTP clients send qparser *text*, not Query objects."""
    names = [
        name
        for name, __ in catalog.variable_name_counts().most_common(3)
    ]
    texts = [f"with {name}" for name in names]
    anchor = names[0] if names else "salinity"
    for dataset_id in catalog.dataset_ids()[:5]:
        bbox = catalog.get(dataset_id).bbox
        lat = (bbox.min_lat + bbox.max_lat) / 2.0
        lon = (bbox.min_lon + bbox.max_lon) / 2.0
        texts.append(
            f"near {lat:.3f}, {lon:.3f} within 100 km with {anchor}"
        )
    return texts


def _serve_config_from_args(args: argparse.Namespace):
    from .serve import ServeConfig

    return ServeConfig(
        max_concurrency=args.concurrency,
        queue_depth=args.queue_depth,
        shard_workers=args.shard_workers,
        shard_threshold=args.shard_threshold,
        score_workers=args.score_workers,
    )


def _validate_serve_args(args: argparse.Namespace) -> str | None:
    for flag, value, minimum in (
        ("--limit", getattr(args, "limit", 1), 1),
        ("--concurrency", args.concurrency, 1),
        ("--queue-depth", args.queue_depth, 0),
        ("--shard-threshold", args.shard_threshold, 1),
    ):
        if value < minimum:
            return f"{flag} must be >= {minimum}"
    if args.shard_workers is not None and args.shard_workers < 1:
        return "--shard-workers must be >= 1"
    if args.score_workers is not None and args.score_workers < 2:
        return "--score-workers must be >= 2"
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .obs import AccessLogWriter, FlightRecorder, SLOConfig, SLOTracker
    from .serve import SearchHTTPServer, SearchService

    problem = _validate_serve_args(args)
    if problem is None and args.port < 0:
        problem = "--port must be >= 0"
    if problem is None and args.drain_seconds < 0.0:
        problem = "--drain-seconds must be >= 0"
    if (
        problem is None
        and args.refresh_seconds is not None
        and args.refresh_seconds <= 0.0
    ):
        problem = "--refresh-seconds must be > 0"
    if problem is None and args.slo_p95_ms <= 0.0:
        problem = "--slo-p95-ms must be > 0"
    if problem is None and not 0.0 <= args.slo_error_rate <= 1.0:
        problem = "--slo-error-rate must lie in [0, 1]"
    if problem is None and not 0.0 < args.slo_availability <= 1.0:
        problem = "--slo-availability must lie in (0, 1]"
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    service = SearchService(
        catalog,
        hierarchy=vocabulary_hierarchy(),
        config=_serve_config_from_args(args),
    )
    slo = SLOTracker(
        SLOConfig(
            latency_p95_seconds=args.slo_p95_ms / 1e3,
            max_error_rate=args.slo_error_rate,
            min_availability=args.slo_availability,
        )
    )
    flight = FlightRecorder()
    access_log = (
        AccessLogWriter(args.access_log)
        if args.access_log is not None
        else None
    )
    server = SearchHTTPServer(
        service,
        host=args.host,
        port=args.port,
        slo=slo,
        flight=flight,
        access_log=access_log,
    ).start()
    host, port = server.address
    print(
        f"serving {args.catalog} at http://{host}:{port} "
        f"(GET /search?q=..., /healthz, /telemetry, /metrics, "
        f"/debug/slow)",
        flush=True,
    )
    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, lambda *_: stop.set())
        print("Ctrl-C (or SIGTERM) drains and exits", flush=True)
    deadline = (
        time.monotonic() + args.max_seconds
        if args.max_seconds is not None
        else None
    )
    next_refresh = (
        time.monotonic() + args.refresh_seconds
        if args.refresh_seconds is not None
        else None
    )
    refreshes = 0
    try:
        while not stop.wait(0.2):
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                break
            if next_refresh is not None and now >= next_refresh:
                # refresh() is a version-compare no-op when nothing was
                # published, so polling is cheap; external writers give
                # us no PublishDelta, hence the full-rebuild path.
                if service.refresh():
                    refreshes += 1
                next_refresh = now + args.refresh_seconds
    finally:
        drained = server.close(timeout=args.drain_seconds)
        stats = service.stats()
        print(
            f"shutdown: drained={drained}, "
            f"served {stats['requests_admitted']} requests, "
            f"refreshed {refreshes} snapshots",
            flush=True,
        )
        from .ui import render_slo_report

        print(render_slo_report(slo.report()), flush=True)
        if args.flight_out is not None:
            kept = flight.dump(args.flight_out)
            print(
                f"flight recorder: {kept} records -> {args.flight_out}",
                flush=True,
            )
        if access_log is not None:
            access_log.close()
            print(
                f"access log: {access_log.lines} lines -> "
                f"{args.access_log}",
                flush=True,
            )
        catalog.close()
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serve import (
        SearchHTTPServer,
        SearchService,
        run_load,
        run_load_http,
    )
    from .ui import render_serve_report

    problem = _validate_serve_args(args)
    for flag, value, minimum in (
        ("--clients", args.clients, 1),
        ("--requests", args.requests, 1),
    ):
        if problem is None and value < minimum:
            problem = f"{flag} must be >= {minimum}"
    if problem is None and args.think_ms < 0.0:
        problem = "--think-ms must be >= 0"
    if problem is None and args.zipf < 0.0:
        problem = "--zipf must be >= 0"
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    texts = args.query or None
    if texts:
        try:
            queries = [parse_query(text) for text in texts]
        except QueryParseError as exc:
            print(f"error: {exc}", file=sys.stderr)
            catalog.close()
            return 2
    elif args.http:
        texts = _default_workload_texts(catalog)
        queries = [parse_query(text) for text in texts]
    else:
        queries = _default_workload(catalog)
    config = _serve_config_from_args(args)
    with SearchService(
        catalog, hierarchy=vocabulary_hierarchy(), config=config
    ) as service:
        if args.http:
            with SearchHTTPServer(service, port=0).start() as server:
                print(f"socket mode: {server.url}")
                report = run_load_http(
                    server.url,
                    texts,
                    clients=args.clients,
                    requests_per_client=args.requests,
                    think_seconds=args.think_ms / 1e3,
                    zipf_s=args.zipf,
                    limit=args.limit,
                    seed=args.seed,
                    live_version=lambda: catalog.version,
                )
                print(render_serve_report(report, service.stats()))
        else:
            report = run_load(
                service,
                queries,
                clients=args.clients,
                requests_per_client=args.requests,
                think_seconds=args.think_ms / 1e3,
                zipf_s=args.zipf,
                limit=args.limit,
                seed=args.seed,
                live_version=lambda: catalog.version,
            )
            print(render_serve_report(report, service.stats()))
    catalog.close()
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    try:
        feature = catalog.get(args.dataset_id)
    except KeyError:
        print(f"error: no dataset {args.dataset_id!r} in catalog",
              file=sys.stderr)
        catalog.close()
        return 2
    print(render_summary_text(summarize(feature)))
    catalog.close()
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    fs = VirtualArchive.import_from(args.directory)
    if len(fs) == 0:
        print(f"error: no files under {args.directory}", file=sys.stderr)
        return 2
    state = WranglingState(fs=fs)
    chain = default_chain(scan=ScanArchive())
    chain.run(state)
    report = validate(state)
    print(report.summary())
    for failure in report.failures[:20]:
        print(f"  [{failure.check}] {failure.message}")
    if len(report.failures) > 20:
        print(f"  ... and {len(report.failures) - 20} more")
    return 0 if report.ok else 1


def _cmd_menu(args: argparse.Namespace) -> int:
    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    present = set(catalog.variable_name_counts())
    hierarchy = vocabulary_hierarchy()
    lines = []
    for name, depth in hierarchy.walk():
        descendants = hierarchy.expand(name)
        count = sum(1 for d in descendants if d in present)
        if count == 0 and name not in present:
            continue
        marker = "" if hierarchy.node(name).measurable else " *"
        lines.append("  " * depth + f"- {name}{marker}")
    print("\n".join(lines))
    catalog.close()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .catalog import dump_catalog

    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    text = dump_catalog(catalog, indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"exported {len(catalog)} datasets to {args.output}")
    catalog.close()
    return 0


def _cmd_facets(args: argparse.Namespace) -> int:
    from .core import render_facet_sidebar, render_menu_with_counts

    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    print(render_facet_sidebar(catalog))
    print()
    print("variable menu:")
    print(render_menu_with_counts(catalog, vocabulary_hierarchy()))
    catalog.close()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .ui import render_health_report

    catalog = _open_catalog(args.catalog)
    if catalog is None:
        return 2
    print(render_health_report(catalog))
    catalog.close()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "wrangle": _cmd_wrangle,
    "search": _cmd_search,
    "serve": _cmd_serve,
    "serve-bench": _cmd_serve_bench,
    "summary": _cmd_summary,
    "validate": _cmd_validate,
    "menu": _cmd_menu,
    "export": _cmd_export,
    "facets": _cmd_facets,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Variable hierarchies and multi-taxonomy links."""

from .taxonomy import TaxonomyLink, TaxonomyLinks, default_taxonomy_links
from .tree import (
    ConceptHierarchy,
    ConceptNode,
    HierarchyError,
    vocabulary_hierarchy,
)

__all__ = [
    "ConceptHierarchy",
    "ConceptNode",
    "HierarchyError",
    "TaxonomyLink",
    "TaxonomyLinks",
    "default_taxonomy_links",
    "vocabulary_hierarchy",
]

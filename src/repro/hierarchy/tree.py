"""Concept hierarchies over variable names.

The Table's "concepts at multiple levels of detail" row: ``fluorescence``
vs ``fluores375``/``fluores400``.  The desired result is "collapse or
expose as needed; allow variables to be grouped; support hierarchical
menus".  A :class:`ConceptHierarchy` is a forest of named concepts;
queries naming an inner concept expand to all measurable descendants,
and the UI renders the forest as an indented menu.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class HierarchyError(ValueError):
    """Raised on structural violations (cycles, duplicate nodes, ...)."""


@dataclass(slots=True)
class ConceptNode:
    """One node: a concept or a concrete (measurable) variable."""

    name: str
    parent: str | None = None
    measurable: bool = True
    description: str = ""
    children: list[str] = field(default_factory=list)


class ConceptHierarchy:
    """A mutable forest of concept nodes, keyed by name."""

    def __init__(self) -> None:
        self._nodes: dict[str, ConceptNode] = {}

    # -- construction --------------------------------------------------------

    def add(
        self,
        name: str,
        parent: str | None = None,
        measurable: bool = True,
        description: str = "",
    ) -> ConceptNode:
        """Add a node; the parent is auto-created as a concept if missing.

        Raises:
            HierarchyError: on duplicate names or self-parenting.
        """
        if name in self._nodes:
            raise HierarchyError(f"duplicate node {name!r}")
        if parent == name:
            raise HierarchyError(f"node {name!r} cannot be its own parent")
        if parent is not None and parent not in self._nodes:
            self.add(parent, parent=None, measurable=False)
        node = ConceptNode(
            name=name,
            parent=parent,
            measurable=measurable,
            description=description,
        )
        self._nodes[name] = node
        if parent is not None:
            self._nodes[parent].children.append(name)
        return node

    def remove(self, name: str) -> None:
        """Remove a leaf node.

        Raises:
            HierarchyError: when the node has children or does not exist.
        """
        node = self._nodes.get(name)
        if node is None:
            raise HierarchyError(f"no node {name!r}")
        if node.children:
            raise HierarchyError(f"node {name!r} has children")
        if node.parent is not None:
            self._nodes[node.parent].children.remove(name)
        del self._nodes[name]

    def move(self, name: str, new_parent: str | None) -> None:
        """Re-parent a node (curatorial activity: "modifying a hierarchy").

        Raises:
            HierarchyError: on unknown nodes or when the move would create
                a cycle.
        """
        node = self._nodes.get(name)
        if node is None:
            raise HierarchyError(f"no node {name!r}")
        if new_parent is not None:
            if new_parent not in self._nodes:
                raise HierarchyError(f"no node {new_parent!r}")
            if new_parent == name or new_parent in self.descendants(name):
                raise HierarchyError(
                    f"moving {name!r} under {new_parent!r} creates a cycle"
                )
        if node.parent is not None:
            self._nodes[node.parent].children.remove(name)
        node.parent = new_parent
        if new_parent is not None:
            self._nodes[new_parent].children.append(name)

    # -- queries ---------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """A stable content key for equality-of-meaning comparisons.

        Two hierarchies with the same nodes (name, parent link,
        measurability, description) have equal fingerprints however
        they were constructed; any structural or label difference
        changes it.  The serving layer compares fingerprints instead of
        object identity when deciding whether a replacement hierarchy
        actually changes scoring — an equal-but-distinct object must
        not force a full engine rebuild or invalidate warm caches.

        Not ``__eq__``: defining that would null the default ``__hash__``
        and hierarchies are used as identity keys elsewhere.  Child
        *order* is excluded deliberately — ``expand()``/scoring are
        set-based, and parent links already determine the structure.
        """
        return tuple(
            (node.name, node.parent, node.measurable, node.description)
            for node in sorted(
                self._nodes.values(), key=lambda node: node.name
            )
        )

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> ConceptNode:
        """Return the node.

        Raises:
            HierarchyError: when absent.
        """
        try:
            return self._nodes[name]
        except KeyError:
            raise HierarchyError(f"no node {name!r}")

    def roots(self) -> list[str]:
        """Names of parentless nodes, sorted."""
        return sorted(n.name for n in self._nodes.values() if n.parent is None)

    def children(self, name: str) -> list[str]:
        """Direct children of ``name`` (sorted)."""
        return sorted(self.node(name).children)

    def ancestors(self, name: str) -> list[str]:
        """Ancestors of ``name`` from parent up to the root."""
        out = []
        current = self.node(name).parent
        while current is not None:
            out.append(current)
            current = self._nodes[current].parent
        return out

    def descendants(self, name: str) -> set[str]:
        """All strict descendants of ``name``."""
        out: set[str] = set()
        stack = list(self.node(name).children)
        while stack:
            child = stack.pop()
            if child in out:
                continue
            out.add(child)
            stack.extend(self._nodes[child].children)
        return out

    def expand(self, name: str) -> set[str]:
        """Measurable names a query for ``name`` should match: ``name``
        itself (if measurable) plus all measurable descendants.

        Unknown names expand to themselves — search still works on a
        vocabulary the hierarchy has not caught up with.
        """
        if name not in self._nodes:
            return {name}
        out = {
            d for d in self.descendants(name) if self._nodes[d].measurable
        }
        if self._nodes[name].measurable:
            out.add(name)
        return out

    def depth(self, name: str) -> int:
        """Root is depth 0."""
        return len(self.ancestors(name))

    def distance(self, a: str, b: str) -> int | None:
        """Tree distance between two nodes, or None when disconnected."""
        if a not in self._nodes or b not in self._nodes:
            return None
        path_a = [a] + self.ancestors(a)
        depth_in_a = {name: i for i, name in enumerate(path_a)}
        steps_b = 0
        current: str | None = b
        while current is not None:
            if current in depth_in_a:
                return steps_b + depth_in_a[current]
            current = self._nodes[current].parent
            steps_b += 1
        return None

    def walk(self) -> Iterator[tuple[str, int]]:
        """Depth-first (name, depth) over the forest, children sorted."""
        for root in self.roots():
            yield from self._walk_from(root, 0)

    def _walk_from(self, name: str, depth: int) -> Iterator[tuple[str, int]]:
        yield name, depth
        for child in self.children(name):
            yield from self._walk_from(child, depth + 1)

    def menu(self) -> str:
        """The hierarchical menu rendering the Table calls for."""
        lines = []
        for name, depth in self.walk():
            node = self._nodes[name]
            marker = "" if node.measurable else " *"
            lines.append("  " * depth + f"- {name}{marker}")
        return "\n".join(lines)

    def flattened(self, max_depth: int) -> "ConceptHierarchy":
        """A copy with depth capped at ``max_depth``.

        The hierarchy-generation component's "configure: levels" knob:
        nodes deeper than ``max_depth`` re-attach to their ancestor at
        depth ``max_depth - 1``, so menus never nest deeper than the
        configured level while keeping every variable reachable.

        Raises:
            HierarchyError: if ``max_depth`` is not positive.
        """
        if max_depth < 1:
            raise HierarchyError("max_depth must be at least 1")
        out = ConceptHierarchy()
        for name, depth in self.walk():
            node = self.node(name)
            if depth <= max_depth:
                parent = node.parent
            else:
                ancestors = self.ancestors(name)
                parent = ancestors[depth - max_depth]
            out.add(
                name,
                parent=parent,
                measurable=node.measurable,
                description=node.description,
            )
        return out

    def group_of(self, name: str) -> str:
        """The top-level concept a variable rolls up to (itself if root)."""
        node = self.node(name)
        current = node
        while current.parent is not None:
            current = self._nodes[current.parent]
        return current.name


def vocabulary_hierarchy() -> ConceptHierarchy:
    """The default hierarchy induced by the canonical vocabulary's
    parent links (abstract concepts marked non-measurable)."""
    from ..archive.vocabulary import VOCABULARY, _ABSTRACT_CONCEPTS

    hierarchy = ConceptHierarchy()
    # Parents first so children attach to proper nodes.
    pending = dict(VOCABULARY)
    while pending:
        progressed = False
        for name in list(pending):
            var = pending[name]
            if var.parent is None or var.parent in hierarchy:
                hierarchy.add(
                    name,
                    parent=var.parent,
                    measurable=name not in _ABSTRACT_CONCEPTS,
                    description=var.description,
                )
                del pending[name]
                progressed = True
        if not progressed:  # pragma: no cover - vocabulary is acyclic
            raise HierarchyError(f"cyclic parents among {sorted(pending)}")
    return hierarchy

"""Links from variables to multiple external taxonomies.

The Table's "source-context naming variations" row calls for attaching a
context to a variable and "link[ing] to multiple taxonomies".  A
:class:`TaxonomyLinks` registry records, per canonical variable, its path
in any number of named taxonomies (CF standard names, GCMD keywords, a
local station taxonomy, ...), so context is preserved and exposable.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import defaultdict


@dataclass(frozen=True, slots=True)
class TaxonomyLink:
    """One variable's placement in one taxonomy."""

    taxonomy: str
    path: tuple[str, ...]

    @property
    def leaf(self) -> str:
        """The final path element."""
        return self.path[-1]

    def __str__(self) -> str:
        return f"{self.taxonomy}:{' > '.join(self.path)}"


class TaxonomyLinks:
    """Registry of variable -> links across named taxonomies."""

    def __init__(self) -> None:
        self._links: dict[str, list[TaxonomyLink]] = defaultdict(list)

    def add(self, variable: str, taxonomy: str, path: tuple[str, ...]) -> None:
        """Link ``variable`` to a path in ``taxonomy``.

        Raises:
            ValueError: if the path is empty or the link already exists.
        """
        if not path:
            raise ValueError("taxonomy path must be non-empty")
        link = TaxonomyLink(taxonomy=taxonomy, path=path)
        if link in self._links[variable]:
            raise ValueError(f"duplicate link {link} for {variable!r}")
        self._links[variable].append(link)

    def links_for(self, variable: str) -> list[TaxonomyLink]:
        """All links of ``variable`` (empty list when unlinked)."""
        return list(self._links.get(variable, ()))

    def taxonomies(self) -> list[str]:
        """Sorted names of all taxonomies with at least one link."""
        return sorted(
            {link.taxonomy for links in self._links.values() for link in links}
        )

    def variables_under(
        self, taxonomy: str, prefix: tuple[str, ...]
    ) -> list[str]:
        """Variables whose ``taxonomy`` path starts with ``prefix``."""
        out = []
        for variable, links in self._links.items():
            for link in links:
                if (
                    link.taxonomy == taxonomy
                    and link.path[: len(prefix)] == prefix
                ):
                    out.append(variable)
                    break
        return sorted(out)

    def __len__(self) -> int:
        return sum(len(links) for links in self._links.values())


def default_taxonomy_links() -> TaxonomyLinks:
    """CF-like and GCMD-like links for the canonical vocabulary.

    Synthesized stand-ins for the real external taxonomies (which are
    data we do not ship): paths follow each standard's actual shape.
    """
    from ..archive.vocabulary import VOCABULARY, Context

    links = TaxonomyLinks()
    gcmd_branch = {
        Context.AIR: ("Earth Science", "Atmosphere"),
        Context.WATER: ("Earth Science", "Oceans"),
        Context.SEAFLOOR: ("Earth Science", "Oceans", "Bathymetry"),
        Context.PLATFORM: ("Earth Science", "Instrumentation"),
        Context.NONE: ("Earth Science",),
    }
    for var in VOCABULARY.values():
        links.add(
            var.name,
            "cf",
            tuple(var.name.split("_")) if "_" in var.name else (var.name,),
        )
        links.add(var.name, "gcmd", gcmd_branch[var.context] + (var.name,))
    return links

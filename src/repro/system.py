"""The end-to-end facade: wrangle an archive, then search it.

:class:`DataNearHere` wires the whole poster together — the wrangling
chain builds and publishes the metadata catalog, the search engine ranks
over it, summaries and renderers serve the UI figures.  This is the
entry point the examples and most downstream users want; every part
remains individually importable for finer control.
"""

from __future__ import annotations

from .archive.filesystem import VirtualArchive
from .catalog.store import CatalogStore, MemoryCatalog
from .core.cache import QueryCache
from .core.query import Query
from .core.scoring import ScoringConfig
from .core.search import BooleanSearchEngine, SearchEngine, SearchResults
from .core.summary import DatasetSummary, summarize
from .curator.session import CuratorSession
from .obs import Telemetry, use_telemetry
from .ui.render import render_search_text, render_summary_text
from .wrangling.chain import ChainRunReport, ProcessChain, default_chain
from .wrangling.state import WranglingState
from .wrangling.validate import ValidationReport, validate


class NotWrangledError(RuntimeError):
    """Raised when search is attempted before any catalog was published."""


class DataNearHere:
    """Scientific-data search over a wrangled metadata catalog."""

    def __init__(
        self,
        fs: VirtualArchive,
        chain: ProcessChain | None = None,
        published: CatalogStore | None = None,
        scoring: ScoringConfig | None = None,
        workers: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        # `published` may be an *empty* store, which is falsy — test
        # against None, not truthiness.
        self.state = WranglingState(
            fs=fs,
            published=published if published is not None else MemoryCatalog(),
        )
        self.chain = chain or default_chain()
        if workers is not None:
            self.set_scan_workers(workers)
        self.scoring = scoring or ScoringConfig()
        self._engine: SearchEngine | None = None
        # One cache for the system's lifetime: entries are keyed on the
        # catalog version, so they survive engine rebuilds and re-runs
        # of an unchanged archive ("run & rerun" stays warm).
        self._cache = QueryCache(maxsize=512)
        # One telemetry registry for the system's lifetime: every
        # wrangle/search runs under it, so counters accumulate across
        # runs and the span tree covers the whole session.
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    # -- wrangling ---------------------------------------------------------

    def set_scan_workers(self, workers: int | None) -> None:
        """Set the ingest parallelism on the chain's scan component.

        ``None`` restores the default (one worker per CPU); ``1`` forces
        the serial path.  A chain without a scan-archive component is
        left untouched.
        """
        from .wrangling.scan import ScanArchive

        for component in self.chain.components:
            if isinstance(component, ScanArchive):
                component.workers = workers

    def wrangle(self) -> ChainRunReport:
        """Run the full wrangling chain and refresh search indexes.

        The first run builds indexes over the published catalog; later
        runs fold the publish delta in incrementally (O(changed)), so
        re-wrangling a lightly-edited archive does not pay an
        O(catalog) index rebuild — and an unchanged archive keeps the
        query cache warm.
        """
        with use_telemetry(self.telemetry):
            report = self.chain.run(self.state)
            published = self.state.published
            delta = self.state.published_delta
            engine = self._engine
            with self.telemetry.span("index.refresh"):
                if (
                    engine is not None
                    and engine.catalog is published
                    and engine.indexes is not None
                    and delta is not None
                    and not delta.full_copy
                ):
                    if delta.changed:
                        # The hierarchy may have been regenerated
                        # alongside the changed catalog; an unchanged
                        # publish keeps the old object so
                        # version-matched cache entries stay live.
                        engine.hierarchy = self.state.hierarchy
                        engine.refresh_indexes(
                            updated=[
                                published.get(i) for i in delta.upserted
                            ],
                            removed=delta.removed,
                        )
                else:
                    self._engine = SearchEngine(
                        published,
                        hierarchy=self.state.hierarchy,
                        config=self.scoring,
                        cache=self._cache,
                    )
                    self._engine.build_indexes()
        return report

    def validate(self) -> ValidationReport:
        """Validation checks over the working catalog."""
        return validate(self.state)

    @property
    def quarantine(self):
        """The quarantine log: files the scan set aside, with reasons.

        Quarantined paths are retried automatically on every
        :meth:`wrangle`; entries resolve when the file is repaired (and
        catalogs successfully) or disappears from the archive.
        """
        return self.state.quarantine

    def quarantine_report(self) -> str:
        """The rendered quarantine page (text)."""
        from .ui.health import render_quarantine_report

        return render_quarantine_report(self.state.quarantine)

    def curator_session(self) -> CuratorSession:
        """A curator session sharing this system's chain and state."""
        return CuratorSession(
            self.state.fs, chain=self.chain, state=self.state
        )

    # -- search -------------------------------------------------------------

    @property
    def engine(self) -> SearchEngine:
        """The ranked search engine over the published catalog.

        Raises:
            NotWrangledError: before the first :meth:`wrangle`.
        """
        if self._engine is None:
            raise NotWrangledError("call wrangle() before searching")
        return self._engine

    def search(self, query: Query, limit: int = 10) -> SearchResults:
        """Ranked search over the published catalog."""
        with use_telemetry(self.telemetry):
            return self.engine.search(query, limit=limit)

    def search_stats(self) -> dict:
        """Engine counters (query-cache hits/misses, index state)."""
        return self.engine.stats()

    def search_service(self, config=None) -> "SearchService":
        """A concurrent :class:`~repro.serve.SearchService` front door.

        The service snapshots the published catalog and serves requests
        from any number of threads; call its ``refresh()`` after each
        :meth:`wrangle` to pick up the new version.  It shares this
        system's query cache (version-keyed entries stay warm across
        snapshot refreshes of an unchanged catalog) and telemetry
        registry (request spans land in the same session trace).

        Raises:
            NotWrangledError: before the first :meth:`wrangle`.
        """
        from .serve import SearchService

        engine = self.engine  # raises NotWrangledError pre-wrangle
        return SearchService(
            engine.catalog,
            hierarchy=self.state.hierarchy,
            scoring=self.scoring,
            config=config,
            cache=self._cache,
            telemetry=self.telemetry,
        )

    def telemetry_snapshot(self) -> dict:
        """A point-in-time view of this system's telemetry registry.

        Counters, gauges, histograms, the recorded span tree, and
        per-path span statistics — everything the stats report and the
        JSONL trace sink render.  See :meth:`repro.obs.Telemetry.snapshot`.
        """
        return self.telemetry.snapshot()

    def search_page(self, query: Query, limit: int = 10) -> str:
        """The rendered search-results page (text)."""
        return render_search_text(query, self.search(query, limit=limit))

    def baseline_engine(self) -> BooleanSearchEngine:
        """The unranked boolean baseline over the same catalog."""
        return BooleanSearchEngine(
            self.engine.catalog, hierarchy=self.state.hierarchy
        )

    def similar(self, dataset_id: str, limit: int = 5):
        """'More datasets like this one' over the published catalog."""
        from .core.similar import similar_datasets

        return similar_datasets(
            self.engine.catalog,
            dataset_id,
            limit=limit,
            hierarchy=self.state.hierarchy,
            config=self.scoring,
        )

    # -- summaries -----------------------------------------------------------

    def summary(self, dataset_id: str) -> DatasetSummary:
        """The dataset-summary content for one published dataset."""
        feature = self.engine.catalog.get(dataset_id)
        return summarize(feature, taxonomy_links=self.state.taxonomy_links)

    def summary_page(self, dataset_id: str) -> str:
        """The rendered dataset-summary page (text)."""
        return render_summary_text(self.summary(dataset_id))
